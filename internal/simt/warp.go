// Package simt implements the unified SIMT core microarchitecture that
// both graphics shaders and GPGPU kernels execute on — Emerald-Go's
// equivalent of the GPGPU-Sim 3.x core model the paper builds on
// (Table 2): 32-wide warps executing in lock step, per-warp SIMT
// reconvergence stacks, a scoreboard, greedy-then-oldest warp
// scheduling, a coalescing load/store unit and the per-core L1 caches
// (instruction, data, texture, depth, constant/vertex).
package simt

import (
	"fmt"

	"emerald/internal/mem"
	"emerald/internal/shader"
)

// WarpSize is the number of threads per warp (paper: 32).
const WarpSize = 32

// FullMask has one bit per lane.
const FullMask = uint32(0xFFFFFFFF)

// WarpEnv supplies a warp's connection to the outside world: attribute
// and texture data for graphics warps, kernel parameters and shared
// memory for compute warps, and the functional memory. Implementations
// live in the gpu/gfx packages; simt stays substrate-only.
type WarpEnv interface {
	// AttrIn returns the vec4 input attribute for a lane. A non-zero
	// addr means the data logically resides in memory (vertex fetch) and
	// the access is timed through the constant/vertex cache; addr 0
	// means on-chip data (fragment varyings from the raster planes).
	AttrIn(lane, slot int) (val [4]float32, addr uint64)
	// OutWrite consumes a vec4 output. A non-zero addr is timed as a
	// store (vertex outputs stream to the L2-backed output buffer).
	OutWrite(lane, slot int, val [4]float32) (addr uint64)
	// Tex samples texture unit at (u,v), returning the filtered value
	// and the texel addresses touched (timed through L1T; nearest
	// filtering touches one, bilinear up to four; zero entries unused).
	Tex(lane, unit int, u, v float32) (val [4]float32, addrs [4]uint64)
	// ZAddr and CAddr give the lane's depth and color addresses for the
	// in-shader raster operations.
	ZAddr(lane int) uint64
	CAddr(lane int) uint64
	// ConstBase is the base address of the bound uniform bank.
	ConstBase() uint64
	// SharedMem returns the thread block's scratchpad (nil outside
	// compute).
	SharedMem() []byte
	// Memory is the functional backing store.
	Memory() *mem.Memory
	// Retired is invoked when the warp's last thread exits.
	Retired(w *Warp)
}

// stackEntry is one SIMT reconvergence stack level: execute at pc with
// mask until pc reaches rpc, then pop.
type stackEntry struct {
	pc, rpc uint32
	mask    uint32
}

// noRPC marks the bottom stack entry (reconverges only at exit).
const noRPC = ^uint32(0)

// Warp is 32 threads executing one shader in lock step.
type Warp struct {
	ID      int
	Prog    *shader.Program
	Threads [WarpSize]shader.Thread
	Special [WarpSize]shader.Special
	Env     WarpEnv

	// BlockID groups warps into a thread block for barriers/shared mem
	// (compute); graphics warps use block -1.
	BlockID int

	stack      []stackEntry
	pendingRPC uint32

	// scoreboard counts pending writers per register.
	scoreboard [shader.NumRegs]uint8
	// outstanding memory operations (issued, awaiting data).
	outstanding int

	readyAt   uint64 // earliest cycle the warp may issue again
	atBarrier bool
	done      bool

	// parked is a conservative lower bound on the next cycle warpReady
	// can return true: the scheduler skips the warp (one comparison)
	// until it expires. Set by Core.schedReady when the warp fails to
	// issue; cleared (to 0) at every point the blocking condition can
	// lift from outside the warp's own execution — scoreboard release
	// (unlock, which every outstanding-memory decrement rides along
	// with) and barrier release. Timed stalls (readyAt) expire on their
	// own. A warp with parked > cycle is invisible to the scheduler and
	// to the core's quiet/NextWake checks, which is what lets a fully
	// memory-stalled core park its cluster shard on the event wheel.
	parked uint64

	// LaunchedAt orders warps for greedy-then-oldest scheduling.
	LaunchedAt uint64
	lastIssued uint64

	// launchCycle stamps the launch time for the warp's trace span.
	launchCycle uint64
}

// newWarp initializes a warp at pc 0 with the given initial active mask.
func newWarp(id int, prog *shader.Program, env WarpEnv, blockID int, mask uint32) *Warp {
	w := &Warp{ID: id, Prog: prog, Env: env, BlockID: blockID}
	w.stack = append(w.stack, stackEntry{pc: 0, rpc: noRPC, mask: mask})
	w.pendingRPC = noRPC
	return w
}

// Done reports whether every thread has exited.
func (w *Warp) Done() bool { return w.done }

// ActiveMask returns the current top-of-stack mask (0 when done).
func (w *Warp) ActiveMask() uint32 {
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].mask
}

// PC returns the current program counter.
func (w *Warp) PC() uint32 {
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].pc
}

// StackDepth returns the SIMT stack depth (test/stat hook).
func (w *Warp) StackDepth() int { return len(w.stack) }

// reconverge pops stack entries whose pc reached their reconvergence
// point, and drops empty-mask entries.
func (w *Warp) reconverge() {
	for len(w.stack) > 0 {
		top := &w.stack[len(w.stack)-1]
		if top.mask == 0 || (top.rpc != noRPC && top.pc == top.rpc) {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		return
	}
	w.done = true
}

// branch applies a (possibly divergent) branch. takenMask must be a
// subset of the current active mask.
func (w *Warp) branch(target uint32, takenMask uint32) (diverged bool) {
	top := &w.stack[len(w.stack)-1]
	cur := top.mask
	notTaken := cur &^ takenMask
	switch {
	case takenMask == cur: // uniform taken
		top.pc = target
	case takenMask == 0: // uniform not taken
		top.pc++
	default: // divergence
		// The reconvergence point comes from the preceding ssy. Without
		// one, rpc stays noRPC: the TOS reconvergence entry is then
		// unreachable by pc and gets reclaimed when its lanes exit
		// (correct, if slower — paths serialize to warp exit).
		rpc := w.pendingRPC
		fallthru := top.pc + 1
		// TOS becomes the reconvergence entry: resume at rpc with the
		// pre-branch mask once both paths arrive; its own rpc is
		// unchanged.
		top.pc = rpc
		w.stack = append(w.stack,
			stackEntry{pc: fallthru, rpc: rpc, mask: notTaken},
			stackEntry{pc: target, rpc: rpc, mask: takenMask},
		)
		diverged = true
	}
	w.pendingRPC = noRPC
	return diverged
}

// exitLanes removes lanes from every stack level (thread exit / kill).
func (w *Warp) exitLanes(mask uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	if len(w.stack) > 0 {
		// Advance past the exit instruction for any remaining lanes.
		w.stack[len(w.stack)-1].pc++
	}
	w.reconverge()
}

// advance moves past a non-branch instruction.
func (w *Warp) advance() {
	w.stack[len(w.stack)-1].pc++
	w.reconverge()
}

// hazard reports whether instruction in has a RAW/WAW hazard against the
// scoreboard.
func (w *Warp) hazard(in shader.Instr) bool {
	read := func(s shader.Src) bool {
		return !s.IsImm && w.scoreboard[s.Reg] > 0
	}
	if read(in.A) || read(in.B) || read(in.C) {
		return true
	}
	// Quad-register reads.
	switch in.Op {
	case shader.OpOut4, shader.OpPack4, shader.OpFBSt, shader.OpZSt:
		if !in.A.IsImm {
			for i := 0; i < 4; i++ {
				r := int(in.A.Reg) + i
				if r < shader.NumRegs && w.scoreboard[r] > 0 {
					return true
				}
			}
		}
	}
	if in.HasDst() {
		for i := 0; i < in.DstWidth(); i++ {
			r := int(in.Dst) + i
			if r < shader.NumRegs && w.scoreboard[r] > 0 {
				return true
			}
		}
	}
	return false
}

// lockDst marks the instruction's destination registers pending.
func (w *Warp) lockDst(in shader.Instr) []uint8 {
	n := in.DstWidth()
	if n == 0 {
		return nil
	}
	regs := make([]uint8, 0, n)
	for i := 0; i < n; i++ {
		r := in.Dst + uint8(i)
		w.scoreboard[r]++
		regs = append(regs, r)
	}
	return regs
}

// unlock releases registers locked by lockDst. This is the single
// scoreboard-release chokepoint (ALU/SFU writebacks and memory fills
// both land here), so it doubles as the park-clearing hook: the warp
// becomes schedulable again the cycle its dependency resolves.
func (w *Warp) unlock(regs []uint8) {
	w.parked = 0
	for _, r := range regs {
		if w.scoreboard[r] > 0 {
			w.scoreboard[r]--
		}
	}
}

func (w *Warp) String() string {
	return fmt.Sprintf("warp%d pc=%d mask=%08x depth=%d", w.ID, w.PC(), w.ActiveMask(), len(w.stack))
}
