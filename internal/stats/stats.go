// Package stats collects and reports simulation statistics: named
// counters, distributions, and time-bucketed bandwidth series. Every
// hardware model in the simulator owns a *Registry (or a scoped child of
// one) and publishes its counters there, so experiment harnesses can dump
// uniform tables without reaching into model internals.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
)

// Registry is a hierarchy of named statistics. Creating, enumerating and
// dumping statistics is not safe for concurrent use — models build their
// counters during construction, on the coordinator. Counter updates
// (Inc/Add) are atomic so shards of the parallel tick engine may bump
// shared counters concurrently; Distribution is not, and must stay
// shard-local or coordinator-only (see DESIGN.md, concurrency model).
type Registry struct {
	prefix   string
	counters map[string]*Counter
	dists    map[string]*Distribution
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Distribution),
	}
}

// Scope returns a view of r where every name is prefixed with
// "name.". Scoped views share storage with the root.
func (r *Registry) Scope(name string) *Registry {
	return &Registry{
		prefix:   r.prefix + name + ".",
		counters: r.counters,
		dists:    r.dists,
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	full := r.prefix + name
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Distribution returns the distribution with the given name, creating it
// on first use.
func (r *Registry) Distribution(name string) *Distribution {
	full := r.prefix + name
	d, ok := r.dists[full]
	if !ok {
		d = &Distribution{}
		r.dists[full] = d
	}
	return d
}

// Value returns the current value of a counter, or 0 if it has never been
// touched.
func (r *Registry) Value(name string) int64 {
	if c, ok := r.counters[r.prefix+name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns all counter names (fully qualified), sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls f for every counter with its fully qualified name, sorted.
// Unlike Value, it is prefix-independent (usable from scoped views).
func (r *Registry) Each(f func(name string, v int64)) {
	for _, n := range r.Names() {
		f(n, r.counters[n].Value())
	}
}

// Reset zeroes every counter and distribution in the registry.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, d := range r.dists {
		*d = Distribution{}
	}
}

// distNames returns all distribution names (fully qualified), sorted.
func (r *Registry) distNames() []string {
	names := make([]string, 0, len(r.dists))
	for n := range r.dists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Dump writes "name value" lines for every counter whose fully qualified
// name contains the filter substring (empty filter matches all), then one
// summary line per matching distribution (count, mean, quantiles, range).
func (r *Registry) Dump(w io.Writer, filter string) {
	for _, n := range r.Names() {
		if filter != "" && !strings.Contains(n, filter) {
			continue
		}
		fmt.Fprintf(w, "%-48s %d\n", n, r.counters[n].Value())
	}
	for _, n := range r.distNames() {
		if filter != "" && !strings.Contains(n, filter) {
			continue
		}
		d := r.dists[n]
		fmt.Fprintf(w, "%-48s n=%d mean=%.2f p50=%.1f p95=%.1f p99=%.1f min=%.1f max=%.1f\n",
			n, d.Count(), d.Mean(), d.Quantile(0.50), d.Quantile(0.95),
			d.Quantile(0.99), d.Min(), d.Max())
	}
}

// jsonDist is a Distribution's JSON representation.
type jsonDist struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// DumpJSON writes the full registry as one JSON object with "counters"
// (name -> value) and "distributions" (name -> summary) maps, keys
// sorted, for machine consumption by plotting/regression tooling.
func (r *Registry) DumpJSON(w io.Writer) error {
	counters := make(map[string]int64, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c.Value()
	}
	dists := make(map[string]jsonDist, len(r.dists))
	for n, d := range r.dists {
		dists[n] = jsonDist{
			Count: d.Count(), Sum: d.Sum(), Mean: d.Mean(),
			Min: d.Min(), Max: d.Max(),
			P50: d.Quantile(0.50), P95: d.Quantile(0.95), P99: d.Quantile(0.99),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{
		"counters":      counters,
		"distributions": dists,
	})
}

// Counter is a monotonically adjustable int64 statistic. Updates are
// atomic: counters are the one statistic shards may touch from inside a
// parallel tick phase (additions commute, so totals are independent of
// worker interleaving).
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which may be negative, e.g. for occupancy gauges).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v.Load() }

// distBuckets is the number of log₂ histogram buckets past the first:
// bucket 0 holds v < 1, bucket i (1..distBuckets) holds 2^(i-1) <= v <
// 2^i, so the histogram spans the full positive int64 range.
const distBuckets = 63

// Distribution accumulates samples into a log₂-bucketed histogram and
// reports count/sum/min/max/mean plus approximate quantiles.
type Distribution struct {
	n        int64
	sum      float64
	min, max float64
	buckets  [distBuckets + 1]int64
}

// Sample records one observation.
func (d *Distribution) Sample(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
	d.buckets[bucketOf(v)]++
}

// bucketOf maps a sample to its log₂ bucket index.
func bucketOf(v float64) int {
	if v < 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) // floor(log2(v)) + 1 for v >= 1
	if b > distBuckets {
		b = distBuckets
	}
	return b
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Quantile returns the approximate p-quantile (p in [0,1]) by linear
// interpolation within the sample's log₂ bucket, clamped to the observed
// [min, max]. With no samples it returns 0.
func (d *Distribution) Quantile(p float64) float64 {
	if d.n == 0 {
		return 0
	}
	if p <= 0 {
		return d.min
	}
	if p >= 1 {
		return d.max
	}
	target := p * float64(d.n)
	var cum float64
	for i, c := range d.buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if target <= next {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(c)
			v := lo + frac*(hi-lo)
			if v < d.min {
				v = d.min
			}
			if v > d.max {
				v = d.max
			}
			return v
		}
		cum = next
	}
	return d.max
}

// HistogramBucket is one cumulative histogram bucket: Count samples
// fell at or below Upper. The telemetry plane renders these as native
// prometheus histogram buckets.
type HistogramBucket struct {
	Upper float64
	Count int64
}

// CumulativeBuckets returns the non-empty log₂ buckets as cumulative
// (upper bound, running count) pairs, in increasing bound order — the
// shape a prometheus histogram wants. Empty with no samples.
func (d *Distribution) CumulativeBuckets() []HistogramBucket {
	var out []HistogramBucket
	var cum int64
	for i, c := range d.buckets {
		if c == 0 {
			continue
		}
		cum += c
		_, hi := bucketBounds(i)
		out = append(out, HistogramBucket{Upper: hi, Count: cum})
	}
	return out
}

// Count returns the number of samples.
func (d *Distribution) Count() int64 { return d.n }

// Sum returns the sum of all samples.
func (d *Distribution) Sum() float64 { return d.sum }

// Mean returns the sample mean (0 with no samples).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 with no samples).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample (0 with no samples).
func (d *Distribution) Max() float64 { return d.max }
