// Package stats collects and reports simulation statistics: named
// counters, distributions, and time-bucketed bandwidth series. Every
// hardware model in the simulator owns a *Registry (or a scoped child of
// one) and publishes its counters there, so experiment harnesses can dump
// uniform tables without reaching into model internals.
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Registry is a hierarchy of named statistics. A Registry is not safe for
// concurrent use; the simulator is single-threaded by design (determinism
// is a feature for an architecture simulator).
type Registry struct {
	prefix   string
	counters map[string]*Counter
	dists    map[string]*Distribution
}

// NewRegistry returns an empty root registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		dists:    make(map[string]*Distribution),
	}
}

// Scope returns a view of r where every name is prefixed with
// "name.". Scoped views share storage with the root.
func (r *Registry) Scope(name string) *Registry {
	return &Registry{
		prefix:   r.prefix + name + ".",
		counters: r.counters,
		dists:    r.dists,
	}
}

// Counter returns the counter with the given name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	full := r.prefix + name
	c, ok := r.counters[full]
	if !ok {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Distribution returns the distribution with the given name, creating it
// on first use.
func (r *Registry) Distribution(name string) *Distribution {
	full := r.prefix + name
	d, ok := r.dists[full]
	if !ok {
		d = &Distribution{}
		r.dists[full] = d
	}
	return d
}

// Value returns the current value of a counter, or 0 if it has never been
// touched.
func (r *Registry) Value(name string) int64 {
	if c, ok := r.counters[r.prefix+name]; ok {
		return c.Value()
	}
	return 0
}

// Names returns all counter names (fully qualified), sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Each calls f for every counter with its fully qualified name, sorted.
// Unlike Value, it is prefix-independent (usable from scoped views).
func (r *Registry) Each(f func(name string, v int64)) {
	for _, n := range r.Names() {
		f(n, r.counters[n].Value())
	}
}

// Reset zeroes every counter and distribution in the registry.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.v = 0
	}
	for _, d := range r.dists {
		*d = Distribution{}
	}
}

// Dump writes "name value" lines for every counter whose fully qualified
// name contains the filter substring (empty filter matches all).
func (r *Registry) Dump(w io.Writer, filter string) {
	for _, n := range r.Names() {
		if filter != "" && !strings.Contains(n, filter) {
			continue
		}
		fmt.Fprintf(w, "%-48s %d\n", n, r.counters[n].Value())
	}
}

// Counter is a monotonically adjustable int64 statistic.
type Counter struct{ v int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v++ }

// Add adds n (which may be negative, e.g. for occupancy gauges).
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current value.
func (c *Counter) Value() int64 { return c.v }

// Distribution accumulates samples and reports count/sum/min/max/mean.
type Distribution struct {
	n        int64
	sum      float64
	min, max float64
}

// Sample records one observation.
func (d *Distribution) Sample(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// Count returns the number of samples.
func (d *Distribution) Count() int64 { return d.n }

// Sum returns the sum of all samples.
func (d *Distribution) Sum() float64 { return d.sum }

// Mean returns the sample mean (0 with no samples).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 with no samples).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample (0 with no samples).
func (d *Distribution) Max() float64 { return d.max }
