package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads")
	c.Inc()
	c.Add(4)
	if got := r.Value("reads"); got != 5 {
		t.Fatalf("reads = %d, want 5", got)
	}
	if got := r.Value("never"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return same counter")
	}
	if r.Counter("x") == r.Counter("y") {
		t.Fatal("different names must return different counters")
	}
}

func TestScopePrefixes(t *testing.T) {
	r := NewRegistry()
	gpu := r.Scope("gpu")
	gpu.Counter("l2.hits").Add(7)
	if got := r.Value("gpu.l2.hits"); got != 7 {
		t.Fatalf("scoped counter via root = %d, want 7", got)
	}
	inner := gpu.Scope("core0")
	inner.Counter("warps").Inc()
	if got := r.Value("gpu.core0.warps"); got != 1 {
		t.Fatalf("nested scope = %d, want 1", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Distribution("d").Sample(3)
	r.Reset()
	if r.Value("a") != 0 {
		t.Fatal("counter not reset")
	}
	if r.Distribution("d").Count() != 0 {
		t.Fatal("distribution not reset")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, v := range []float64{4, 2, 6} {
		d.Sample(v)
	}
	if d.Count() != 3 || d.Min() != 2 || d.Max() != 6 || d.Mean() != 4 {
		t.Fatalf("dist = count %d min %v max %v mean %v", d.Count(), d.Min(), d.Max(), d.Mean())
	}
	var empty Distribution
	if empty.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

// Property: counter value equals the sum of all Adds.
func TestCounterSumProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		r := NewRegistry()
		c := r.Counter("p")
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			want += int64(d)
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(100)
	tl.Record(0, "cpu", 64)
	tl.Record(99, "cpu", 64)
	tl.Record(100, "gpu", 128)
	tl.Record(350, "cpu", 32)
	if tl.Buckets() != 4 {
		t.Fatalf("buckets = %d, want 4", tl.Buckets())
	}
	if got := tl.Bytes(0, "cpu"); got != 128 {
		t.Fatalf("bucket0 cpu = %d, want 128", got)
	}
	if got := tl.Bytes(1, "gpu"); got != 128 {
		t.Fatalf("bucket1 gpu = %d, want 128", got)
	}
	if got := tl.Bytes(2, "cpu"); got != 0 {
		t.Fatalf("empty bucket = %d, want 0", got)
	}
	if got := tl.TotalBytes("cpu"); got != 160 {
		t.Fatalf("total cpu = %d, want 160", got)
	}
	series := tl.Series("cpu")
	if series[0] != 1.28 {
		t.Fatalf("series[0] = %v, want 1.28", series[0])
	}
}

// Property: total bytes recorded equals TotalBytes regardless of cycle
// ordering.
func TestTimelineConservation(t *testing.T) {
	f := func(cycles []uint16, sizes []uint8) bool {
		tl := NewTimeline(64)
		var want uint64
		n := len(cycles)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			tl.Record(uint64(cycles[i]), "s", uint64(sizes[i]))
			want += uint64(sizes[i])
		}
		return tl.TotalBytes("s") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineDump(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(5, "cpu", 100)
	var b strings.Builder
	tl.Dump(&b, 0)
	out := b.String()
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "10.0000") {
		t.Fatalf("dump output unexpected:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "config", "value")
	tb.AddRow("BAS", 1.0)
	tb.AddRow("HMC", 1.97)
	out := tb.String()
	for _, want := range []string{"Figure X", "config", "BAS", "1.970"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 || tb.Cell(1, 0) != "HMC" || tb.Cell(9, 9) != "" {
		t.Fatal("row/cell accessors broken")
	}
}

func TestRegistryDumpFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu.hits").Add(1)
	r.Counter("cpu.hits").Add(2)
	var b strings.Builder
	r.Dump(&b, "gpu")
	if strings.Contains(b.String(), "cpu.hits") {
		t.Fatal("filter leaked non-matching counters")
	}
	if !strings.Contains(b.String(), "gpu.hits") {
		t.Fatal("filter dropped matching counters")
	}
}
