package stats

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads")
	c.Inc()
	c.Add(4)
	if got := r.Value("reads"); got != 5 {
		t.Fatalf("reads = %d, want 5", got)
	}
	if got := r.Value("never"); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return same counter")
	}
	if r.Counter("x") == r.Counter("y") {
		t.Fatal("different names must return different counters")
	}
}

func TestScopePrefixes(t *testing.T) {
	r := NewRegistry()
	gpu := r.Scope("gpu")
	gpu.Counter("l2.hits").Add(7)
	if got := r.Value("gpu.l2.hits"); got != 7 {
		t.Fatalf("scoped counter via root = %d, want 7", got)
	}
	inner := gpu.Scope("core0")
	inner.Counter("warps").Inc()
	if got := r.Value("gpu.core0.warps"); got != 1 {
		t.Fatalf("nested scope = %d, want 1", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(10)
	r.Distribution("d").Sample(3)
	r.Reset()
	if r.Value("a") != 0 {
		t.Fatal("counter not reset")
	}
	if r.Distribution("d").Count() != 0 {
		t.Fatal("distribution not reset")
	}
}

func TestDistribution(t *testing.T) {
	var d Distribution
	for _, v := range []float64{4, 2, 6} {
		d.Sample(v)
	}
	if d.Count() != 3 || d.Min() != 2 || d.Max() != 6 || d.Mean() != 4 {
		t.Fatalf("dist = count %d min %v max %v mean %v", d.Count(), d.Min(), d.Max(), d.Mean())
	}
	var empty Distribution
	if empty.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

// Property: counter value equals the sum of all Adds.
func TestCounterSumProperty(t *testing.T) {
	f := func(deltas []int16) bool {
		r := NewRegistry()
		c := r.Counter("p")
		var want int64
		for _, d := range deltas {
			c.Add(int64(d))
			want += int64(d)
		}
		return c.Value() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineBuckets(t *testing.T) {
	tl := NewTimeline(100)
	tl.Record(0, "cpu", 64)
	tl.Record(99, "cpu", 64)
	tl.Record(100, "gpu", 128)
	tl.Record(350, "cpu", 32)
	if tl.Buckets() != 4 {
		t.Fatalf("buckets = %d, want 4", tl.Buckets())
	}
	if got := tl.Bytes(0, "cpu"); got != 128 {
		t.Fatalf("bucket0 cpu = %d, want 128", got)
	}
	if got := tl.Bytes(1, "gpu"); got != 128 {
		t.Fatalf("bucket1 gpu = %d, want 128", got)
	}
	if got := tl.Bytes(2, "cpu"); got != 0 {
		t.Fatalf("empty bucket = %d, want 0", got)
	}
	if got := tl.TotalBytes("cpu"); got != 160 {
		t.Fatalf("total cpu = %d, want 160", got)
	}
	series := tl.Series("cpu")
	if series[0] != 1.28 {
		t.Fatalf("series[0] = %v, want 1.28", series[0])
	}
}

// Property: total bytes recorded equals TotalBytes regardless of cycle
// ordering.
func TestTimelineConservation(t *testing.T) {
	f := func(cycles []uint16, sizes []uint8) bool {
		tl := NewTimeline(64)
		var want uint64
		n := len(cycles)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			tl.Record(uint64(cycles[i]), "s", uint64(sizes[i]))
			want += uint64(sizes[i])
		}
		return tl.TotalBytes("s") == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineDump(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(5, "cpu", 100)
	var b strings.Builder
	tl.Dump(&b, 0)
	out := b.String()
	if !strings.Contains(out, "cpu") || !strings.Contains(out, "10.0000") {
		t.Fatalf("dump output unexpected:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Figure X", "config", "value")
	tb.AddRow("BAS", 1.0)
	tb.AddRow("HMC", 1.97)
	out := tb.String()
	for _, want := range []string{"Figure X", "config", "BAS", "1.970"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.Rows() != 2 || tb.Cell(1, 0) != "HMC" || tb.Cell(9, 9) != "" {
		t.Fatal("row/cell accessors broken")
	}
}

func TestQuantileUniform(t *testing.T) {
	var d Distribution
	for v := 1; v <= 1024; v++ {
		d.Sample(float64(v))
	}
	// Log₂ buckets give approximate quantiles; within-bucket linear
	// interpolation keeps the error under the bucket width.
	checks := []struct{ p, want, tol float64 }{
		{0, 1, 0},
		{0.50, 512, 160},
		{0.95, 973, 60},
		{0.99, 1014, 30},
		{1, 1024, 0},
	}
	for _, c := range checks {
		got := d.Quantile(c.p)
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("Quantile(%.2f) = %.1f, want %.1f ± %.0f", c.p, got, c.want, c.tol)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty Distribution
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	var one Distribution
	one.Sample(42)
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(p); got != 42 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 42", p, got)
		}
	}
	var small Distribution
	small.Sample(0.25) // bucket 0 (v < 1)
	small.Sample(0.75)
	if got := small.Quantile(0.5); got < 0.25 || got > 0.75 {
		t.Fatalf("sub-1 quantile = %v, want within [0.25, 0.75]", got)
	}
}

// Property: quantiles are monotone in p and clamped to [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var d Distribution
		for _, s := range samples {
			d.Sample(float64(s))
		}
		prev := d.Min()
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			q := d.Quantile(p)
			if q < prev || q < d.Min() || q > d.Max() {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDumpIncludesDistributions(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu.hits").Add(3)
	d := r.Distribution("gpu.draw_cycles")
	d.Sample(100)
	d.Sample(300)
	var b strings.Builder
	r.Dump(&b, "")
	out := b.String()
	if !strings.Contains(out, "gpu.draw_cycles") {
		t.Fatalf("Dump dropped distributions:\n%s", out)
	}
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "mean=200.00") {
		t.Fatalf("distribution summary wrong:\n%s", out)
	}
	var filtered strings.Builder
	r.Dump(&filtered, "hits")
	if strings.Contains(filtered.String(), "draw_cycles") {
		t.Fatal("filter leaked non-matching distributions")
	}
}

func TestDumpJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu.hits").Add(7)
	d := r.Distribution("dram.latency")
	for _, v := range []float64{10, 20, 30, 40} {
		d.Sample(v)
	}
	var b strings.Builder
	if err := r.DumpJSON(&b); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Counters      map[string]int64 `json:"counters"`
		Distributions map[string]struct {
			Count int64   `json:"count"`
			Mean  float64 `json:"mean"`
			P50   float64 `json:"p50"`
			P95   float64 `json:"p95"`
			P99   float64 `json:"p99"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
		} `json:"distributions"`
	}
	if err := json.Unmarshal([]byte(b.String()), &parsed); err != nil {
		t.Fatalf("DumpJSON output is not valid JSON: %v", err)
	}
	if parsed.Counters["gpu.hits"] != 7 {
		t.Fatalf("counters = %v", parsed.Counters)
	}
	lat, ok := parsed.Distributions["dram.latency"]
	if !ok || lat.Count != 4 || lat.Mean != 25 || lat.Min != 10 || lat.Max != 40 {
		t.Fatalf("distributions = %+v", parsed.Distributions)
	}
	if lat.P50 < lat.Min || lat.P99 > lat.Max || lat.P50 > lat.P95 || lat.P95 > lat.P99 {
		t.Fatalf("quantiles out of order: %+v", lat)
	}
}

// TestTimelineDumpGolden pins the Dump layout, including alignment for
// source names longer than the 12-char numeric columns.
func TestTimelineDumpGolden(t *testing.T) {
	tl := NewTimeline(10)
	tl.Record(5, "cpu", 100)
	tl.Record(5, "a_very_long_source_name", 50)
	tl.Record(15, "cpu", 10)
	var b strings.Builder
	tl.Dump(&b, 0)
	got := b.String()
	want := "time                cpu a_very_long_source_name\n" +
		"0               10.0000                  5.0000\n" +
		"10               1.0000                  0.0000\n"
	if got != want {
		t.Fatalf("Timeline.Dump golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// Every row must be the same width now that headers size the columns.
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[0]) {
			t.Fatalf("row %d width %d != header width %d:\n%s",
				i, len(lines[i]), len(lines[0]), got)
		}
	}
}

func TestRegistryDumpFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpu.hits").Add(1)
	r.Counter("cpu.hits").Add(2)
	var b strings.Builder
	r.Dump(&b, "gpu")
	if strings.Contains(b.String(), "cpu.hits") {
		t.Fatal("filter leaked non-matching counters")
	}
	if !strings.Contains(b.String(), "gpu.hits") {
		t.Fatal("filter dropped matching counters")
	}
}
