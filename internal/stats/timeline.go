package stats

import (
	"fmt"
	"io"
	"sync"
)

// Timeline accumulates per-source byte counts into fixed-width time
// buckets, producing the bandwidth-versus-time series of Figures 10 and
// 14 in the paper: for each bucket, how many bytes each traffic source
// (CPU, GPU, display, ...) moved.
//
// Record is safe to call from concurrent tick-engine shards (per-bucket
// byte additions commute, so totals are worker-count-independent).
// Sources() reports first-seen order, which under concurrent recording
// is scheduling-dependent — callers that dump timelines should pin the
// column order up front with Register.
type Timeline struct {
	BucketCycles uint64
	mu           sync.Mutex
	sources      []string
	index        map[string]int
	buckets      []map[int]uint64 // bucket -> source index -> bytes
}

// NewTimeline creates a timeline with the given bucket width in cycles.
func NewTimeline(bucketCycles uint64) *Timeline {
	if bucketCycles == 0 {
		bucketCycles = 1
	}
	return &Timeline{
		BucketCycles: bucketCycles,
		index:        make(map[string]int),
	}
}

// Register pins the given sources (and their column order) ahead of any
// recording, making Sources()/Dump output independent of which shard
// records first. Unknown names are appended; known ones are left alone.
func (t *Timeline) Register(sources ...string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range sources {
		if _, ok := t.index[s]; !ok {
			t.index[s] = len(t.sources)
			t.sources = append(t.sources, s)
		}
	}
}

// Record adds bytes moved by source at the given cycle.
func (t *Timeline) Record(cycle uint64, source string, bytes uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := int(cycle / t.BucketCycles)
	for len(t.buckets) <= b {
		t.buckets = append(t.buckets, nil)
	}
	if t.buckets[b] == nil {
		t.buckets[b] = make(map[int]uint64)
	}
	si, ok := t.index[source]
	if !ok {
		si = len(t.sources)
		t.index[source] = si
		t.sources = append(t.sources, source)
	}
	t.buckets[b][si] += bytes
}

// Sources returns the source names in first-seen order.
func (t *Timeline) Sources() []string { return t.sources }

// Buckets returns the number of buckets recorded so far.
func (t *Timeline) Buckets() int { return len(t.buckets) }

// Bytes returns the bytes moved by source within bucket b.
func (t *Timeline) Bytes(b int, source string) uint64 {
	if b < 0 || b >= len(t.buckets) || t.buckets[b] == nil {
		return 0
	}
	si, ok := t.index[source]
	if !ok {
		return 0
	}
	return t.buckets[b][si]
}

// TotalBytes returns the total bytes moved by source across all buckets.
func (t *Timeline) TotalBytes(source string) uint64 {
	var sum uint64
	for b := range t.buckets {
		sum += t.Bytes(b, source)
	}
	return sum
}

// Series returns the per-bucket bandwidth of source in bytes-per-cycle.
func (t *Timeline) Series(source string) []float64 {
	out := make([]float64, len(t.buckets))
	for b := range t.buckets {
		out[b] = float64(t.Bytes(b, source)) / float64(t.BucketCycles)
	}
	return out
}

// Dump writes a CSV-ish table: one row per bucket, one column per source,
// values in bytes/cycle. cyclesPerMS converts bucket index to
// milliseconds for the first column (0 disables the conversion and prints
// the raw bucket start cycle).
func (t *Timeline) Dump(w io.Writer, cyclesPerMS float64) {
	// Column widths track the source names so headers and values stay
	// aligned even for names longer than the 12-char value format.
	widths := make([]int, len(t.sources))
	fmt.Fprintf(w, "%-10s", "time")
	for si, s := range t.sources {
		widths[si] = len(s)
		if widths[si] < 12 {
			widths[si] = 12
		}
		fmt.Fprintf(w, " %*s", widths[si], s)
	}
	fmt.Fprintln(w)
	for b := range t.buckets {
		start := float64(uint64(b) * t.BucketCycles)
		if cyclesPerMS > 0 {
			fmt.Fprintf(w, "%-10.3f", start/cyclesPerMS)
		} else {
			fmt.Fprintf(w, "%-10.0f", start)
		}
		for si := range t.sources {
			var v uint64
			if t.buckets[b] != nil {
				v = t.buckets[b][si]
			}
			fmt.Fprintf(w, " %*.4f", widths[si], float64(v)/float64(t.BucketCycles))
		}
		fmt.Fprintln(w)
	}
}
