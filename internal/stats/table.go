package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table used by the experiment
// harnesses to print figure/table data the way the paper reports it.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col), or "" if out of range.
func (t *Table) Cell(row, col int) string {
	if row < 0 || row >= len(t.rows) || col < 0 || col >= len(t.rows[row]) {
		return ""
	}
	return t.rows[row][col]
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	for i, h := range t.Headers {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}
