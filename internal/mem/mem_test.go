package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	buf := make([]byte, 16)
	m.Read(0x1000, buf)
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("unwritten memory must read as zero")
	}
	if m.PageCount() != 0 {
		t.Fatal("reads must not materialize pages")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	data := []byte("hello, emerald")
	m.Write(0x2FFA, data) // straddles a page boundary
	got := make([]byte, len(data))
	m.Read(0x2FFA, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
	if m.PageCount() != 2 {
		t.Fatalf("page count = %d, want 2 (straddle)", m.PageCount())
	}
}

func TestMemoryTypedAccessors(t *testing.T) {
	m := NewMemory()
	m.WriteU32(64, 0xDEADBEEF)
	if m.ReadU32(64) != 0xDEADBEEF {
		t.Fatal("u32 round trip failed")
	}
	m.WriteU64(128, 0x0123456789ABCDEF)
	if m.ReadU64(128) != 0x0123456789ABCDEF {
		t.Fatal("u64 round trip failed")
	}
	m.WriteF32(256, 3.5)
	if m.ReadF32(256) != 3.5 {
		t.Fatal("f32 round trip failed")
	}
}

// Property: last write wins, for arbitrary overlapping writes.
func TestMemoryLastWriteWins(t *testing.T) {
	f := func(addr uint16, a, b byte) bool {
		m := NewMemory()
		m.Write(uint64(addr), []byte{a})
		m.Write(uint64(addr), []byte{b})
		got := make([]byte, 1)
		m.Read(uint64(addr), got)
		return got[0] == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a write followed by a read of the same span returns the data,
// regardless of page straddling.
func TestMemoryWriteReadProperty(t *testing.T) {
	f := func(addr uint32, data []byte) bool {
		if len(data) > 3*PageSize {
			data = data[:3*PageSize]
		}
		m := NewMemory()
		m.Write(uint64(addr), data)
		got := make([]byte, len(data))
		m.Read(uint64(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPageEnumeration(t *testing.T) {
	m := NewMemory()
	m.Write(0, []byte{1})
	m.Write(PageSize*5, []byte{2})
	pages := m.Pages()
	if len(pages) != 2 {
		t.Fatalf("pages = %v", pages)
	}
	if m.PageData(5) == nil || m.PageData(99) != nil {
		t.Fatal("PageData lookup broken")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(2)
	a := &Request{Addr: 1}
	b := &Request{Addr: 2}
	c := &Request{Addr: 3}
	if !q.Push(a) || !q.Push(b) {
		t.Fatal("pushes under capacity must succeed")
	}
	if q.Push(c) {
		t.Fatal("push over capacity must fail")
	}
	if q.Peek() != a {
		t.Fatal("peek should return oldest")
	}
	if q.Pop() != a || q.Pop() != b || q.Pop() != nil {
		t.Fatal("pop order wrong")
	}
}

func TestQueueUnbounded(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 1000; i++ {
		if !q.Push(&Request{Addr: uint64(i)}) {
			t.Fatal("unbounded queue rejected push")
		}
	}
	if q.Len() != 1000 || q.Full() {
		t.Fatal("unbounded queue accounting wrong")
	}
}

func TestClientClassification(t *testing.T) {
	if ClientCPU.IsIP() {
		t.Fatal("CPU is not an IP")
	}
	for _, c := range []Client{ClientGPU, ClientDisplay, ClientDMA} {
		if !c.IsIP() {
			t.Fatalf("%v should be an IP", c)
		}
	}
	if ClientGPU.String() != "gpu" || Read.String() != "read" || Write.String() != "write" {
		t.Fatal("stringers broken")
	}
}

func TestRequestComplete(t *testing.T) {
	r := &Request{Addr: 0x40, Size: 64, IssuedAt: 10}
	r.Complete(25)
	if !r.Done || r.DoneAt != 25 {
		t.Fatal("complete did not mark request")
	}
}
