package mem

import (
	"encoding/binary"
	"math"
)

// View is a single-goroutine accessor over a Memory that caches the
// most recently touched page, eliding the page-directory lookup (an
// atomic map load per access) on the overwhelmingly common case of
// consecutive accesses landing on the same page. The functional-mode
// executors use it for their fragment-rate memory traffic; the timed
// machine keeps reading Memory directly.
//
// A View caches page *pointers*, which stay valid across concurrent
// materialization (the directory is copy-on-insert; page arrays are
// never replaced) — but not across Memory.Reset or
// Checkpoint.RestoreMemory, which swap the page set. Drop the View
// when the memory is restored.
type View struct {
	m    *Memory
	page uint64
	data *[PageSize]byte
	zero bool // cached entry is the shared zero page (not materialized)
}

// noPage is an impossible page index (addresses are < 2^64, so real
// page indices fit in 52 bits), marking an empty cache.
const noPage = ^uint64(0)

// NewView returns a view over m with a cold cache.
func NewView(m *Memory) *View { return &View{m: m, page: noPage} }

// Memory returns the backing store.
func (v *View) Memory() *Memory { return v.m }

func (v *View) pageFor(page uint64, create bool) *[PageSize]byte {
	if page == v.page && !(create && v.zero) {
		return v.data
	}
	p := v.m.pageFor(page, create)
	v.page, v.data, v.zero = page, p, !create && p == &zeroPage
	return p
}

// Read copies len(p) bytes starting at addr into p.
func (v *View) Read(addr uint64, p []byte) {
	for len(p) > 0 {
		page, off := addr/PageSize, addr%PageSize
		n := copy(p, v.pageFor(page, false)[off:])
		p = p[n:]
		addr += uint64(n)
	}
}

// Write copies p into memory starting at addr.
func (v *View) Write(addr uint64, p []byte) {
	for len(p) > 0 {
		page, off := addr/PageSize, addr%PageSize
		n := copy(v.pageFor(page, true)[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// ReadU32 reads a little-endian uint32.
func (v *View) ReadU32(addr uint64) uint32 {
	if off := addr % PageSize; off+4 <= PageSize {
		return binary.LittleEndian.Uint32(v.pageFor(addr/PageSize, false)[off:])
	}
	return v.m.ReadU32(addr) // page-straddling access; rare
}

// WriteU32 writes a little-endian uint32.
func (v *View) WriteU32(addr uint64, val uint32) {
	if off := addr % PageSize; off+4 <= PageSize {
		binary.LittleEndian.PutUint32(v.pageFor(addr/PageSize, true)[off:], val)
		return
	}
	v.m.WriteU32(addr, val)
}

// ReadF32 reads a little-endian float32.
func (v *View) ReadF32(addr uint64) float32 {
	return math.Float32frombits(v.ReadU32(addr))
}

// WriteF32 writes a little-endian float32.
func (v *View) WriteF32(addr uint64, val float32) {
	v.WriteU32(addr, math.Float32bits(val))
}
