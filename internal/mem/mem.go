// Package mem provides the pieces of the memory system shared by every
// agent in the SoC: the functional backing store (a sparse, page-granular
// physical memory), the timing request type that flows between caches,
// interconnects and DRAM, and small queue primitives used to plumb
// requests between cycle-stepped components.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// PageSize is the granularity of the sparse backing store.
const PageSize = 4096

// Memory is a sparse functional model of physical memory. Reads of pages
// never written return zeroes, like freshly mapped DRAM from the
// simulator's point of view. Memory carries data only; all timing lives
// in the cache/DRAM models.
//
// The page directory is safe for concurrent use: lookups read an
// immutable map snapshot through an atomic pointer, and materializing a
// new page copies the directory under a mutex (copy-on-insert). Page
// *contents* carry no locks — the parallel tick engine guarantees that
// two shards never write the same byte in the same phase (shard-owned
// address ranges; see DESIGN.md), which the race detector verifies,
// since distinct bytes of an array are distinct memory locations.
type Memory struct {
	pages atomic.Pointer[map[uint64]*[PageSize]byte]
	mu    sync.Mutex // serializes copy-on-insert of new pages
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	m := &Memory{}
	empty := make(map[uint64]*[PageSize]byte)
	m.pages.Store(&empty)
	return m
}

// Read copies len(p) bytes starting at addr into p.
func (m *Memory) Read(addr uint64, p []byte) {
	for len(p) > 0 {
		page, off := addr/PageSize, addr%PageSize
		n := copy(p, m.pageFor(page, false)[off:])
		p = p[n:]
		addr += uint64(n)
	}
}

// Write copies p into memory starting at addr.
func (m *Memory) Write(addr uint64, p []byte) {
	for len(p) > 0 {
		page, off := addr/PageSize, addr%PageSize
		n := copy(m.pageFor(page, true)[off:], p)
		p = p[n:]
		addr += uint64(n)
	}
}

// zeroPage backs reads of never-written pages. It is never written to,
// so sharing one instance across goroutines is safe.
var zeroPage [PageSize]byte

func (m *Memory) pageFor(page uint64, create bool) *[PageSize]byte {
	p, ok := (*m.pages.Load())[page]
	if !ok {
		if !create {
			return &zeroPage
		}
		m.mu.Lock()
		old := *m.pages.Load()
		if p, ok = old[page]; !ok {
			next := make(map[uint64]*[PageSize]byte, len(old)+1)
			for k, v := range old {
				next[k] = v
			}
			p = new([PageSize]byte)
			next[page] = p
			m.pages.Store(&next)
		}
		m.mu.Unlock()
	}
	return p
}

// Reset drops every materialized page, returning the memory to its
// freshly constructed all-zeroes state. Checkpoint restore uses it to
// reconcile the page set: without it, pages the target has but the
// snapshot lacks would survive the restore as stale state. Not safe
// concurrently with a running simulation.
func (m *Memory) Reset() {
	m.mu.Lock()
	empty := make(map[uint64]*[PageSize]byte)
	m.pages.Store(&empty)
	m.mu.Unlock()
}

// PageCount reports how many pages have been materialized (for
// checkpoint sizing and tests).
func (m *Memory) PageCount() int { return len(*m.pages.Load()) }

// Pages returns the set of materialized page indices (unordered).
func (m *Memory) Pages() []uint64 {
	pages := *m.pages.Load()
	out := make([]uint64, 0, len(pages))
	for p := range pages {
		out = append(out, p)
	}
	return out
}

// SnapshotPages returns a deep copy of every materialized page, all
// backed by a single allocation — the checkpoint-per-frame sampled
// pass takes one of these per frame boundary, so snapshot cost is a
// single bulk alloc plus page copies rather than one allocation per
// page.
func (m *Memory) SnapshotPages() map[uint64][]byte {
	pages := *m.pages.Load()
	out := make(map[uint64][]byte, len(pages))
	buf := make([]byte, len(pages)*PageSize)
	i := 0
	for p, data := range pages {
		dst := buf[i*PageSize : (i+1)*PageSize : (i+1)*PageSize]
		copy(dst, data[:])
		out[p] = dst
		i++
	}
	return out
}

// PageData returns the raw contents of one materialized page, or nil.
func (m *Memory) PageData(page uint64) []byte {
	if p, ok := (*m.pages.Load())[page]; ok {
		return p[:]
	}
	return nil
}

// ReadU32 reads a little-endian uint32.
func (m *Memory) ReadU32(addr uint64) uint32 {
	var b [4]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteU32 writes a little-endian uint32.
func (m *Memory) WriteU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	m.Write(addr, b[:])
}

// ReadU64 reads a little-endian uint64.
func (m *Memory) ReadU64(addr uint64) uint64 {
	var b [8]byte
	m.Read(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// WriteU64 writes a little-endian uint64.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Write(addr, b[:])
}

// ReadF32 reads a little-endian float32.
func (m *Memory) ReadF32(addr uint64) float32 {
	return math.Float32frombits(m.ReadU32(addr))
}

// WriteF32 writes a little-endian float32.
func (m *Memory) WriteF32(addr uint64, v float32) {
	m.WriteU32(addr, math.Float32bits(v))
}

// Client identifies the class of traffic source issuing a request; the
// DASH and HMC models schedule by it.
type Client uint8

// Traffic source classes.
const (
	ClientCPU Client = iota
	ClientGPU
	ClientDisplay
	ClientDMA
)

// String implements fmt.Stringer.
func (c Client) String() string {
	switch c {
	case ClientCPU:
		return "cpu"
	case ClientGPU:
		return "gpu"
	case ClientDisplay:
		return "display"
	case ClientDMA:
		return "dma"
	}
	return fmt.Sprintf("client(%d)", uint8(c))
}

// IsIP reports whether the client is an IP block (non-CPU) in the paper's
// terminology.
func (c Client) IsIP() bool { return c != ClientCPU }

// Kind is the request direction.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Request is a timing-level memory request. Requests are created by an
// agent (cache miss, DMA engine, CPU load) and flow through queues to the
// DRAM model, which marks them Done. Data movement is functional and
// happens at the endpoints; Request carries no payload.
type Request struct {
	Addr     uint64
	Size     uint32
	Kind     Kind
	Client   Client
	ClientID int // per-class id: CPU core index, GPU unit, ...

	// Done is set by the memory system when the request retires;
	// DoneAt is the retirement cycle.
	Done   bool
	DoneAt uint64

	// IssuedAt is the cycle the requester handed the request to the
	// memory system (for latency stats).
	IssuedAt uint64

	// Tag is requester-private metadata (e.g. MSHR index). When it
	// implements DoneWatcher, Complete notifies it.
	Tag any
}

// DoneWatcher is implemented by request issuers (carried in
// Request.Tag) that need a synchronous signal when their request
// completes — e.g. a cache counting completed-but-uninstalled fills so
// its NextWake stays O(1). The callback may run on a parallel shard
// (a DRAM channel retiring the request), so implementations must be
// safe for concurrent use and restricted to commutative atomic updates.
type DoneWatcher interface {
	RequestDone(r *Request)
}

// Complete marks the request done at the given cycle and notifies the
// issuer's DoneWatcher, if any. Idempotent: a request already done is
// left untouched, so no watcher is ever notified twice.
func (r *Request) Complete(cycle uint64) {
	if r.Done {
		return
	}
	r.Done = true
	r.DoneAt = cycle
	if w, ok := r.Tag.(DoneWatcher); ok {
		w.RequestDone(r)
	}
}

// NeverWake is the NextWake sentinel for a component that is fully
// quiescent: no queued work, no in-flight requests, no scheduled
// events — its state cannot change until new work arrives from
// outside. The tick loops treat it as "no wake deadline".
const NeverWake = ^uint64(0)

// Queue is a bounded FIFO of requests. A zero-capacity queue is
// unbounded.
type Queue struct {
	cap   int
	items []*Request
}

// NewQueue returns a queue with the given capacity (0 = unbounded).
func NewQueue(capacity int) *Queue { return &Queue{cap: capacity} }

// Len returns the number of queued requests.
func (q *Queue) Len() int { return len(q.items) }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.cap > 0 && len(q.items) >= q.cap }

// Push appends r; it reports false (and drops nothing) if the queue is
// full.
func (q *Queue) Push(r *Request) bool {
	if q.Full() {
		return false
	}
	q.items = append(q.items, r)
	return true
}

// Peek returns the oldest request without removing it, or nil.
func (q *Queue) Peek() *Request {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}

// Pop removes and returns the oldest request, or nil.
func (q *Queue) Pop() *Request {
	if len(q.items) == 0 {
		return nil
	}
	r := q.items[0]
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return r
}

// Items returns the backing slice, oldest first (read-only use).
func (q *Queue) Items() []*Request { return q.items }
