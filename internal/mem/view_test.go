package mem

import "testing"

// TestViewMatchesMemory drives the same access sequence through a View
// and directly through the Memory, including the cases the page cache
// must get right: repeated same-page hits, a write landing on a page
// the view has cached as the shared zero page (must materialize, not
// scribble on the zero page), and reads straddling a page boundary.
func TestViewMatchesMemory(t *testing.T) {
	m := NewMemory()
	v := NewView(m)

	// Read-before-write on a never-materialized page: zero, cached.
	if got := v.ReadU32(0x5000); got != 0 {
		t.Fatalf("cold read = %#x, want 0", got)
	}
	// Write to that same page: the cached zero page must be upgraded.
	v.WriteU32(0x5004, 0xdeadbeef)
	if got := v.ReadU32(0x5004); got != 0xdeadbeef {
		t.Fatalf("read-after-write via view = %#x", got)
	}
	if got := m.ReadU32(0x5004); got != 0xdeadbeef {
		t.Fatalf("read-after-write via memory = %#x", got)
	}
	// The shared zero page itself must stay zero.
	if got := (&zeroPage)[4]; got != 0 {
		t.Fatalf("zero page dirtied: %#x", got)
	}

	// Same-page hit path, then a different page, then back.
	v.WriteF32(0x5010, 3.5)
	v.WriteU32(0x9000, 7)
	if got := v.ReadF32(0x5010); got != 3.5 {
		t.Fatalf("ReadF32 after page switch = %v", got)
	}

	// Writes through the memory are visible through the view: pages are
	// shared arrays, not copies.
	m.WriteU32(0x9004, 42)
	if got := v.ReadU32(0x9004); got != 42 {
		t.Fatalf("memory write not visible through view: %d", got)
	}

	// Page-straddling bulk copy round-trips.
	src := make([]byte, 3*PageSize/2)
	for i := range src {
		src[i] = byte(i * 7)
	}
	base := uint64(2*PageSize - 100)
	v.Write(base, src)
	dst := make([]byte, len(src))
	v.Read(base, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("bulk round-trip mismatch at %d: %d != %d", i, dst[i], src[i])
		}
	}
	mdst := make([]byte, len(src))
	m.Read(base, mdst)
	for i := range src {
		if mdst[i] != src[i] {
			t.Fatalf("bulk write not visible via memory at %d", i)
		}
	}
}
