package gl

import (
	"testing"

	"emerald/internal/dram"
	"emerald/internal/geom"
	"emerald/internal/gpu"
	"emerald/internal/mathx"
	"emerald/internal/raster"
	"emerald/internal/shader"
)

// system builds a standalone GPU and a GL context wired to it.
func system(t *testing.T) (*gpu.Standalone, *Context) {
	t.Helper()
	s := gpu.NewStandalone(gpu.CaseStudyIConfig(), dram.Config{
		Geometry: dram.LPDDR3Geometry(2),
		Timing:   dram.LPDDR3Timing(1333),
	}, nil)
	ctx := NewContext(s.Mem(), 0x1000_0000, 64<<20)
	ctx.Submit = func(call *gpu.DrawCall) error {
		return s.GPU.SubmitDraw(call, nil)
	}
	ctx.OnClearDepth = s.GPU.ClearHiZ
	return s, ctx
}

func TestContextObjectLifecycle(t *testing.T) {
	_, ctx := system(t)
	b := ctx.GenBuffer()
	if err := ctx.BufferData(b, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := ctx.BufferData(999, nil); err == nil {
		t.Fatal("unknown buffer accepted")
	}
	tex := ctx.GenTexture()
	if err := ctx.TexImage2D(tex, 2, 2, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := ctx.TexImage2D(tex, 2, 2, make([]byte, 3)); err == nil {
		t.Fatal("short texture data accepted")
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindTexture(0, 12345); err == nil {
		t.Fatal("unknown texture bound")
	}
}

func TestDrawRequiresState(t *testing.T) {
	_, ctx := system(t)
	if err := ctx.DrawElements(raster.Triangles, []uint32{0, 1, 2}); err == nil {
		t.Fatal("draw with no program must fail")
	}
	if err := ctx.UseProgram(shader.VSTransform, shader.FSFlat); err != nil {
		t.Fatal(err)
	}
	if err := ctx.DrawElements(raster.Triangles, []uint32{0, 1, 2}); err == nil {
		t.Fatal("draw with no array buffer must fail")
	}
	if err := ctx.UseProgram(shader.FSFlat, shader.VSTransform); err == nil {
		t.Fatal("swapped shader kinds accepted")
	}
}

func TestEndToEndTriangle(t *testing.T) {
	s, ctx := system(t)
	ctx.Viewport(48, 48)
	ctx.Clear(0xFF000000, true)
	if err := ctx.UseProgram(shader.VSTransform, shader.FSFlat); err != nil {
		t.Fatal(err)
	}
	ctx.SetFlatColor(0, 0, 1, 1)

	tri := &geom.Mesh{
		Positions: []mathx.Vec3{{X: -1, Y: -1}, {X: 1, Y: -1}, {X: 0, Y: 1}},
		Normals:   []mathx.Vec3{{Z: 1}, {Z: 1}, {Z: 1}},
		UVs:       []mathx.Vec2{{}, {X: 1}, {X: 0.5, Y: 1}},
		Indices:   []uint32{0, 1, 2},
	}
	h, err := ctx.UploadMesh(tri)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DrawMesh(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilIdle(3_000_000); err != nil {
		t.Fatal(err)
	}
	blue := shader.PackRGBA8(0, 0, 1, 1)
	if got := ctx.ColorSurface().ReadPixel(s.Mem(), 24, 30); got != blue {
		t.Fatalf("triangle interior = %#x, want %#x", got, blue)
	}
	// Outside the triangle: still the clear color.
	if got := ctx.ColorSurface().ReadPixel(s.Mem(), 2, 2); got != 0xFF000000 {
		t.Fatalf("background = %#x, want clear color", got)
	}
}

func TestTexturedMeshThroughGL(t *testing.T) {
	s, ctx := system(t)
	ctx.Viewport(32, 32)
	ctx.Clear(0, true)
	if err := ctx.UseProgram(shader.VSTransform, shader.FSTexturedEarlyZ); err != nil {
		t.Fatal(err)
	}
	ctx.SetLight(mathx.V3(0, 0, 1))
	tex, err := ctx.UploadTexture(geom.Checker(16, 16, 8, [4]byte{255, 0, 0, 255}, [4]byte{0, 255, 0, 255}))
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		t.Fatal(err)
	}
	quad := &geom.Mesh{
		Positions: []mathx.Vec3{{X: -1, Y: -1}, {X: 1, Y: -1}, {X: 1, Y: 1}, {X: -1, Y: 1}},
		Normals:   []mathx.Vec3{{Z: 1}, {Z: 1}, {Z: 1}, {Z: 1}},
		UVs:       []mathx.Vec2{{}, {X: 1}, {X: 1, Y: 1}, {Y: 1}},
		Indices:   []uint32{0, 1, 2, 0, 2, 3},
	}
	h, err := ctx.UploadMesh(quad)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DrawMesh(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilIdle(3_000_000); err != nil {
		t.Fatal(err)
	}
	// The quad maps the checker across the screen; opposite corners land
	// on different colors.
	a := ctx.ColorSurface().ReadPixel(s.Mem(), 4, 4)
	b := ctx.ColorSurface().ReadPixel(s.Mem(), 20, 4)
	if a == b {
		t.Fatalf("checker not visible: %#x == %#x", a, b)
	}
}

func TestBlendStateFlowsToDraw(t *testing.T) {
	s, ctx := system(t)
	ctx.Viewport(16, 16)
	ctx.Clear(0, true)
	ctx.Enable(Blend)
	ctx.DepthMask(false)
	ctx.SetAlpha(0.5)
	if err := ctx.UseProgram(shader.VSTransform, shader.FSTexturedBlend); err != nil {
		t.Fatal(err)
	}
	tex, _ := ctx.UploadTexture(geom.Checker(4, 4, 4, [4]byte{255, 255, 255, 255}, [4]byte{255, 255, 255, 255}))
	ctx.BindTexture(0, tex)
	quad := &geom.Mesh{
		Positions: []mathx.Vec3{{X: -1, Y: -1}, {X: 1, Y: -1}, {X: 1, Y: 1}, {X: -1, Y: 1}},
		Normals:   []mathx.Vec3{{Z: 1}, {Z: 1}, {Z: 1}, {Z: 1}},
		UVs:       []mathx.Vec2{{}, {X: 1}, {X: 1, Y: 1}, {Y: 1}},
		Indices:   []uint32{0, 1, 2, 0, 2, 3},
	}
	h, _ := ctx.UploadMesh(quad)
	if err := ctx.DrawMesh(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilIdle(3_000_000); err != nil {
		t.Fatal(err)
	}
	r, _, _, _ := shader.UnpackRGBA8(ctx.ColorSurface().ReadPixel(s.Mem(), 8, 8))
	if r < 0.45 || r > 0.55 {
		t.Fatalf("blended value = %v, want ~0.5", r)
	}
}

func TestSceneWorkloadRenders(t *testing.T) {
	// Full workload path: geom scene -> GL -> GPU, one frame of W3.
	s, ctx := system(t)
	scene, err := geom.DFSLWorkload(geom.W3Cube)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Viewport(64, 48)
	ctx.Clear(0xFF202020, true)
	if err := ctx.UseProgram(shader.VSTransform, shader.FSTexturedEarlyZ); err != nil {
		t.Fatal(err)
	}
	ctx.SetMVP(scene.MVP(0, 64.0/48.0))
	ctx.SetLight(mathx.V3(0.3, 0.5, 0.8).Normalize())
	tex, _ := ctx.UploadTexture(scene.Texture)
	ctx.BindTexture(0, tex)
	h, err := ctx.UploadMesh(scene.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.DrawMesh(h); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilIdle(10_000_000); err != nil {
		t.Fatal(err)
	}
	if s.GPU.FragsShaded() == 0 {
		t.Fatal("scene produced no fragments")
	}
	// Center of screen should be covered by the cube (not clear color).
	if got := ctx.ColorSurface().ReadPixel(s.Mem(), 32, 24); got == 0xFF202020 {
		t.Fatal("cube not visible at screen center")
	}
}

func TestRecorderSeesOps(t *testing.T) {
	_, ctx := system(t)
	rec := &captureRecorder{}
	ctx.Recorder = rec
	ctx.Viewport(8, 8)
	ctx.Enable(Blend)
	b := ctx.GenBuffer()
	ctx.BufferData(b, []byte{1, 2})
	var names []string
	for _, op := range rec.ops {
		names = append(names, op)
	}
	want := []string{"Viewport", "Enable", "GenBuffer", "BufferData"}
	if len(names) != len(want) {
		t.Fatalf("ops = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("op %d = %s, want %s", i, names[i], want[i])
		}
	}
}

type captureRecorder struct{ ops []string }

func (r *captureRecorder) Op(name string, args []uint32, blob []byte) {
	r.ops = append(r.ops, name)
}
