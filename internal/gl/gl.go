// Package gl provides the OpenGL-ES-like API and state tracker that sits
// between applications and the GPU model — the role Mesa3D plays in the
// paper's software stack (Figure 8). It owns object namespaces (buffers,
// textures), render state (depth/blend/cull, viewport, surfaces), the
// fixed uniform bank layout, and turns DrawElements into gpu.DrawCall
// submissions. An optional Recorder hook captures the API stream for the
// trace package (the APITrace substitute).
package gl

import (
	"fmt"
	"math"

	"emerald/internal/geom"
	"emerald/internal/gfx"
	"emerald/internal/gpu"
	"emerald/internal/mathx"
	"emerald/internal/mem"
	"emerald/internal/raster"
	"emerald/internal/shader"
)

// Capability toggles, GL-style.
type Capability uint8

// Capabilities.
const (
	DepthTest Capability = iota
	Blend
	CullFace
)

// Uniform bank byte offsets (shared with shader stdlib conventions).
const (
	UniformMVP   = 0
	UniformLight = 64
	UniformAlpha = 80
	uniformBytes = 128
)

// Recorder observes the API stream (implemented by the trace package).
type Recorder interface {
	Op(name string, args []uint32, blob []byte)
}

// Context is one GL context: objects + state + a submission target.
type Context struct {
	Mem *mem.Memory
	// Submit receives finished draw calls (wired to gpu.SubmitDraw by
	// the standalone/full-system drivers).
	Submit func(*gpu.DrawCall) error
	// OnClearDepth lets the GPU invalidate its Hi-Z when the depth
	// buffer is cleared.
	OnClearDepth func()

	// Recorder, when set, captures the API stream.
	Recorder Recorder

	heap     uint64 // bump allocator cursor
	heapEnd  uint64
	nextName uint32

	buffers  map[uint32]bufferObj
	textures map[uint32]texObj

	// Bound state.
	vs, fs      *shader.Program
	arrayBuf    uint32
	stride      uint32
	attrs       [][2]uint32
	texUnits    [4]uint32
	caps        map[Capability]bool
	depthWrite  bool
	color       gfx.Surface
	depth       gfx.Surface
	vp          raster.Viewport
	uniformBase uint64
}

type bufferObj struct {
	base uint64
	size uint64
}

type texObj struct {
	base          uint64
	width, height int
	bilinear      bool
}

// NewContext creates a context managing the address range [heapBase,
// heapBase+heapSize) for its objects.
func NewContext(m *mem.Memory, heapBase, heapSize uint64) *Context {
	c := &Context{
		Mem:        m,
		heap:       heapBase,
		heapEnd:    heapBase + heapSize,
		nextName:   1,
		buffers:    make(map[uint32]bufferObj),
		textures:   make(map[uint32]texObj),
		caps:       map[Capability]bool{DepthTest: true, CullFace: true},
		depthWrite: true,
	}
	c.uniformBase = c.alloc(uniformBytes)
	// Sensible defaults.
	c.SetMVP(mathx.Identity())
	c.SetLight(mathx.V3(0, 0, 1))
	c.SetAlpha(1)
	return c
}

func (c *Context) alloc(size uint64) uint64 {
	const align = 256
	c.heap = (c.heap + align - 1) &^ (align - 1)
	addr := c.heap
	c.heap += size
	if c.heap > c.heapEnd {
		panic(fmt.Sprintf("gl: heap exhausted (%d bytes over)", c.heap-c.heapEnd))
	}
	return addr
}

func (c *Context) record(name string, args []uint32, blob []byte) {
	if c.Recorder != nil {
		c.Recorder.Op(name, args, blob)
	}
}

// GenBuffer creates a buffer object name.
func (c *Context) GenBuffer() uint32 {
	n := c.nextName
	c.nextName++
	c.buffers[n] = bufferObj{}
	c.record("GenBuffer", []uint32{n}, nil)
	return n
}

// BufferData allocates storage for a buffer and uploads data.
func (c *Context) BufferData(name uint32, data []byte) error {
	if _, ok := c.buffers[name]; !ok {
		return fmt.Errorf("gl: unknown buffer %d", name)
	}
	base := c.alloc(uint64(len(data)))
	c.Mem.Write(base, data)
	c.buffers[name] = bufferObj{base: base, size: uint64(len(data))}
	c.record("BufferData", []uint32{name}, data)
	return nil
}

// BufferDataF32 uploads float32 data.
func (c *Context) BufferDataF32(name uint32, data []float32) error {
	raw := make([]byte, len(data)*4)
	for i, f := range data {
		bits := math.Float32bits(f)
		raw[i*4] = byte(bits)
		raw[i*4+1] = byte(bits >> 8)
		raw[i*4+2] = byte(bits >> 16)
		raw[i*4+3] = byte(bits >> 24)
	}
	return c.BufferData(name, raw)
}

// GenTexture creates a texture object name.
func (c *Context) GenTexture() uint32 {
	n := c.nextName
	c.nextName++
	c.textures[n] = texObj{}
	c.record("GenTexture", []uint32{n}, nil)
	return n
}

// TexImage2D uploads an RGBA8 image to a texture.
func (c *Context) TexImage2D(name uint32, w, h int, rgba []byte) error {
	if _, ok := c.textures[name]; !ok {
		return fmt.Errorf("gl: unknown texture %d", name)
	}
	if len(rgba) != w*h*4 {
		return fmt.Errorf("gl: texture data %d bytes, want %d", len(rgba), w*h*4)
	}
	base := c.alloc(uint64(len(rgba)))
	c.Mem.Write(base, rgba)
	c.textures[name] = texObj{base: base, width: w, height: h}
	c.record("TexImage2D", []uint32{name, uint32(w), uint32(h)}, rgba)
	return nil
}

// TexFilterBilinear sets a texture's filtering mode (default nearest).
func (c *Context) TexFilterBilinear(name uint32, on bool) error {
	to, ok := c.textures[name]
	if !ok {
		return fmt.Errorf("gl: unknown texture %d", name)
	}
	to.bilinear = on
	c.textures[name] = to
	v := uint32(0)
	if on {
		v = 1
	}
	c.record("TexFilterBilinear", []uint32{name, v}, nil)
	return nil
}

// BindTexture binds a texture to a unit.
func (c *Context) BindTexture(unit int, name uint32) error {
	if unit < 0 || unit >= len(c.texUnits) {
		return fmt.Errorf("gl: bad texture unit %d", unit)
	}
	if _, ok := c.textures[name]; !ok {
		return fmt.Errorf("gl: unknown texture %d", name)
	}
	c.texUnits[unit] = name
	c.record("BindTexture", []uint32{uint32(unit), name}, nil)
	return nil
}

// UseProgram binds the vertex and fragment shaders.
func (c *Context) UseProgram(vs, fs *shader.Program) error {
	if vs == nil || vs.Kind != shader.KindVertex || fs == nil || fs.Kind != shader.KindFragment {
		return fmt.Errorf("gl: UseProgram needs a VS and an FS")
	}
	c.vs, c.fs = vs, fs
	c.record("UseProgram", nil, []byte(vs.Name+"\x00"+fs.Name))
	return nil
}

// BindArrayBuffer selects the vertex buffer and its layout.
func (c *Context) BindArrayBuffer(name uint32, stride uint32, attrs [][2]uint32) error {
	if _, ok := c.buffers[name]; !ok {
		return fmt.Errorf("gl: unknown buffer %d", name)
	}
	c.arrayBuf = name
	c.stride = stride
	c.attrs = attrs
	flat := []uint32{name, stride}
	for _, a := range attrs {
		flat = append(flat, a[0], a[1])
	}
	c.record("BindArrayBuffer", flat, nil)
	return nil
}

// Enable turns a capability on.
func (c *Context) Enable(cap Capability) {
	c.caps[cap] = true
	c.record("Enable", []uint32{uint32(cap)}, nil)
}

// Disable turns a capability off.
func (c *Context) Disable(cap Capability) {
	c.caps[cap] = false
	c.record("Disable", []uint32{uint32(cap)}, nil)
}

// DepthMask toggles depth writes.
func (c *Context) DepthMask(write bool) {
	c.depthWrite = write
	v := uint32(0)
	if write {
		v = 1
	}
	c.record("DepthMask", []uint32{v}, nil)
}

// Viewport sets the render size and allocates color/depth surfaces for
// it (a combined glViewport + framebuffer allocation).
func (c *Context) Viewport(w, h int) {
	c.vp = raster.Viewport{Width: w, Height: h}
	c.color = gfx.Surface{Base: c.alloc(uint64(w * h * 4)), Width: w, Height: h}
	c.depth = gfx.Surface{Base: c.alloc(uint64(w * h * 4)), Width: w, Height: h}
	c.record("Viewport", []uint32{uint32(w), uint32(h)}, nil)
}

// BindSurfaces points rendering at externally managed color/depth
// surfaces (the SoC's flip chain uses this).
func (c *Context) BindSurfaces(color, depth gfx.Surface) {
	c.color, c.depth = color, depth
	c.vp = raster.Viewport{Width: color.Width, Height: color.Height}
	c.record("BindSurfaces", []uint32{
		uint32(color.Base), uint32(color.Base >> 32), uint32(color.Width), uint32(color.Height),
		uint32(depth.Base), uint32(depth.Base >> 32),
	}, nil)
}

// ColorSurface returns the current color target.
func (c *Context) ColorSurface() gfx.Surface { return c.color }

// DepthSurface returns the current depth target.
func (c *Context) DepthSurface() gfx.Surface { return c.depth }

// SetMVP writes the model-view-projection matrix to the uniform bank.
func (c *Context) SetMVP(m mathx.Mat4) {
	blob := make([]byte, 64)
	for i, f := range m {
		bits := math.Float32bits(f)
		blob[i*4] = byte(bits)
		blob[i*4+1] = byte(bits >> 8)
		blob[i*4+2] = byte(bits >> 16)
		blob[i*4+3] = byte(bits >> 24)
		c.Mem.WriteF32(c.uniformBase+UniformMVP+uint64(i*4), f)
	}
	c.record("SetMVP", nil, blob)
}

// SetLight writes the light direction (also used as flat color).
func (c *Context) SetLight(v mathx.Vec3) {
	c.Mem.WriteF32(c.uniformBase+UniformLight+0, v.X)
	c.Mem.WriteF32(c.uniformBase+UniformLight+4, v.Y)
	c.Mem.WriteF32(c.uniformBase+UniformLight+8, v.Z)
	c.record("SetLight", []uint32{math.Float32bits(v.X), math.Float32bits(v.Y), math.Float32bits(v.Z)}, nil)
}

// SetFlatColor writes an RGBA value into the light/color uniform slot.
func (c *Context) SetFlatColor(r, g, b, a float32) {
	c.Mem.WriteF32(c.uniformBase+UniformLight+0, r)
	c.Mem.WriteF32(c.uniformBase+UniformLight+4, g)
	c.Mem.WriteF32(c.uniformBase+UniformLight+8, b)
	c.Mem.WriteF32(c.uniformBase+UniformLight+12, a)
	c.record("SetFlatColor", []uint32{
		math.Float32bits(r), math.Float32bits(g), math.Float32bits(b), math.Float32bits(a)}, nil)
}

// SetAlpha writes the blend alpha uniform.
func (c *Context) SetAlpha(a float32) {
	c.Mem.WriteF32(c.uniformBase+UniformAlpha, a)
	c.record("SetAlpha", []uint32{math.Float32bits(a)}, nil)
}

// Clear fills the color buffer (packed RGBA8) and, if depth is set, the
// depth buffer (to 1.0), invalidating the GPU's Hi-Z.
func (c *Context) Clear(color uint32, depth bool) {
	if c.vp.Width == 0 {
		return
	}
	c.color.ClearColor(c.Mem, color)
	if depth {
		c.depth.ClearDepth(c.Mem, 1.0)
		if c.OnClearDepth != nil {
			c.OnClearDepth()
		}
	}
	d := uint32(0)
	if depth {
		d = 1
	}
	c.record("Clear", []uint32{color, d}, nil)
}

// FrameEnd records a frame-boundary marker. It has no rendering
// effect; replay hooks key off it — per-frame signatures, checkpoint
// placement, and region gating in sampled simulation.
func (c *Context) FrameEnd() {
	c.record("FrameEnd", nil, nil)
}

// DrawElements submits an indexed draw with the current state.
func (c *Context) DrawElements(mode raster.PrimMode, indices []uint32) error {
	if c.vs == nil || c.fs == nil {
		return fmt.Errorf("gl: no program bound")
	}
	buf, ok := c.buffers[c.arrayBuf]
	if !ok || buf.size == 0 {
		return fmt.Errorf("gl: no array buffer bound")
	}
	if c.vp.Width == 0 {
		return fmt.Errorf("gl: no viewport/surfaces")
	}
	var texes []gpu.TextureBinding
	for unit := 0; unit < c.fs.Units; unit++ {
		to, ok := c.textures[c.texUnits[unit]]
		if !ok || to.width == 0 {
			return fmt.Errorf("gl: fragment shader samples unit %d with no texture", unit)
		}
		texes = append(texes, gpu.TextureBinding{
			Base: to.base, Width: to.width, Height: to.height, Bilinear: to.bilinear,
		})
	}
	call := &gpu.DrawCall{
		VS: c.vs, FS: c.fs,
		VertexBase:   buf.base,
		VertexStride: c.stride,
		AttrOffsets:  c.attrs,
		Indices:      indices,
		Mode:         mode,
		UniformBase:  c.uniformBase,
		Textures:     texes,
		Color:        c.color,
		Depth:        c.depth,
		DepthTest:    c.caps[DepthTest],
		DepthWrite:   c.depthWrite && c.caps[DepthTest],
		Blend:        c.caps[Blend],
		CullBack:     c.caps[CullFace],
		Viewport:     c.vp,
	}
	if err := call.Validate(); err != nil {
		return err
	}
	idxBlob := make([]byte, len(indices)*4)
	for i, v := range indices {
		idxBlob[i*4] = byte(v)
		idxBlob[i*4+1] = byte(v >> 8)
		idxBlob[i*4+2] = byte(v >> 16)
		idxBlob[i*4+3] = byte(v >> 24)
	}
	c.record("DrawElements", []uint32{uint32(mode)}, idxBlob)
	if c.Submit == nil {
		return fmt.Errorf("gl: no submission target")
	}
	return c.Submit(call)
}

// MeshHandle bundles an uploaded mesh's buffer and index data.
type MeshHandle struct {
	Buffer  uint32
	Indices []uint32
	Stride  uint32
	Attrs   [][2]uint32
}

// UploadMesh uploads a geom.Mesh in the standard interleaved layout.
func (c *Context) UploadMesh(m *geom.Mesh) (MeshHandle, error) {
	buf := c.GenBuffer()
	if err := c.BufferDataF32(buf, m.InterleavedVertexData()); err != nil {
		return MeshHandle{}, err
	}
	return MeshHandle{
		Buffer:  buf,
		Indices: m.Indices,
		Stride:  geom.VertexStrideBytes,
		Attrs:   [][2]uint32{{0, 3}, {12, 3}, {24, 2}},
	}, nil
}

// UploadTexture uploads a geom.Texture and returns its name.
func (c *Context) UploadTexture(t *geom.Texture) (uint32, error) {
	name := c.GenTexture()
	if err := c.TexImage2D(name, t.Width, t.Height, t.Pixels); err != nil {
		return 0, err
	}
	return name, nil
}

// DrawMesh binds a mesh handle and draws it.
func (c *Context) DrawMesh(h MeshHandle) error {
	if err := c.BindArrayBuffer(h.Buffer, h.Stride, h.Attrs); err != nil {
		return err
	}
	return c.DrawElements(raster.Triangles, h.Indices)
}
