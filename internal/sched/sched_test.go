package sched

import (
	"testing"

	"emerald/internal/dram"
	"emerald/internal/mem"
)

func dashForTest(useSystemBW bool) *DASH {
	cfg := DefaultDASHConfig(4, useSystemBW)
	cfg.SchedulingUnit = 10
	cfg.SwitchingUnit = 10
	cfg.QuantumLength = 100
	return NewDASH(cfg)
}

func TestDASHUrgencyTracksProgress(t *testing.T) {
	d := dashForTest(false)
	d.RegisterIP(mem.ClientGPU, 0, 1000)
	d.StartFrame(mem.ClientGPU, 0, 0)

	// On schedule at 50% elapsed with 60% done: not urgent.
	d.ReportProgress(mem.ClientGPU, 0, 0.6)
	d.Tick(510)
	if d.Urgent(mem.ClientGPU, 0) {
		t.Fatal("ahead-of-schedule IP must not be urgent")
	}
	// Materially behind at 50% elapsed with 10% done: urgent.
	d.ReportProgress(mem.ClientGPU, 0, 0.1)
	d.Tick(520)
	if !d.Urgent(mem.ClientGPU, 0) {
		t.Fatal("behind-schedule IP must be urgent")
	}
	// Tail of period, unfinished: urgent even if close to done.
	d.ReportProgress(mem.ClientGPU, 0, 0.95)
	d.Tick(950)
	if !d.Urgent(mem.ClientGPU, 0) {
		t.Fatal("IP in deadline tail must be urgent")
	}
	// Finished: never urgent.
	d.ReportProgress(mem.ClientGPU, 0, 1.0)
	d.Tick(960)
	if d.Urgent(mem.ClientGPU, 0) {
		t.Fatal("finished IP must not be urgent")
	}
}

func TestDASHClusteringDCBvsDTB(t *testing.T) {
	mkQueue := func(d *DASH) {
		// Serve traffic: core 0 heavy, cores 1-3 light, GPU very heavy.
		g := dram.LPDDR3Geometry(1)
		c := dram.NewController(dram.Config{
			Name: "d", Geometry: g, Timing: dram.LPDDR3Timing(1333), Scheduler: d,
		}, nil)
		var cycle uint64
		push := func(cl mem.Client, id int, n int) {
			for i := 0; i < n; i++ {
				r := &mem.Request{Addr: uint64(i*64) % (1 << 20), Size: 64, Client: cl, ClientID: id}
				for !c.Push(r) {
					c.Tick(cycle)
					cycle++
				}
			}
		}
		push(mem.ClientCPU, 0, 40)
		push(mem.ClientCPU, 1, 2)
		push(mem.ClientCPU, 2, 2)
		push(mem.ClientCPU, 3, 2)
		push(mem.ClientGPU, 0, 400)
		for !c.Drained() {
			c.Tick(cycle)
			cycle++
		}
		// Force quantum boundary.
		d.Tick(cycle + 200_000_000)
	}

	dcb := dashForTest(false)
	dcb.cfg.QuantumLength = 100_000_000 // recluster only via explicit tick above
	mkQueue(dcb)
	dtb := dashForTest(true)
	dtb.cfg.QuantumLength = 100_000_000
	mkQueue(dtb)

	// Under DCB (CPU-only total), core 0 dominates CPU bandwidth and must
	// be intensive.
	if !dcb.Intensive(0) {
		t.Fatal("DCB: heavy core must be classified memory-intensive")
	}
	if dcb.Intensive(1) {
		t.Fatal("DCB: light core must be non-intensive")
	}
	// Under DTB, GPU bytes inflate the clustering total so even the heavy
	// CPU core fits in the non-intensive budget (the paper's observed
	// hazard of including IP bandwidth).
	if dtb.Intensive(0) {
		t.Fatal("DTB: GPU bandwidth should absorb the heavy core into the non-intensive cluster")
	}
}

func TestDASHPickPrefersUrgentIP(t *testing.T) {
	d := dashForTest(false)
	d.RegisterIP(mem.ClientDisplay, 0, 1000)
	d.StartFrame(mem.ClientDisplay, 0, 0)
	d.ReportProgress(mem.ClientDisplay, 0, 0.0)

	g := dram.LPDDR3Geometry(1)
	c := dram.NewController(dram.Config{
		Name: "d", Geometry: g, Timing: dram.LPDDR3Timing(1333), Scheduler: d,
	}, nil)
	ch := c.Channels[0]

	d.Tick(900) // display far behind: urgent

	if !d.Urgent(mem.ClientDisplay, 0) {
		t.Fatal("display should be urgent")
	}
	c.Push(&mem.Request{Addr: 0, Size: 64, Client: mem.ClientCPU, ClientID: 0})
	c.Push(&mem.Request{Addr: 1 << 16, Size: 64, Client: mem.ClientDisplay, ClientID: 0})
	if idx := d.Pick(ch, 901); idx != 1 {
		t.Fatalf("Pick = %d, want 1 (urgent display first)", idx)
	}
}

func TestDASHPickPrefersNonIntensiveCPUOverNonUrgentIP(t *testing.T) {
	d := dashForTest(false)
	d.RegisterIP(mem.ClientGPU, 0, 1_000_000)
	d.StartFrame(mem.ClientGPU, 0, 0)
	d.ReportProgress(mem.ClientGPU, 0, 0.9) // well ahead: non-urgent
	d.Tick(10)

	g := dram.LPDDR3Geometry(1)
	c := dram.NewController(dram.Config{
		Name: "d", Geometry: g, Timing: dram.LPDDR3Timing(1333), Scheduler: d,
	}, nil)
	ch := c.Channels[0]
	c.Push(&mem.Request{Addr: 1 << 16, Size: 64, Client: mem.ClientGPU, ClientID: 0})
	c.Push(&mem.Request{Addr: 0, Size: 64, Client: mem.ClientCPU, ClientID: 1})
	if idx := d.Pick(ch, 11); idx != 1 {
		t.Fatalf("Pick = %d, want 1 (non-intensive CPU over non-urgent GPU)", idx)
	}
}

func TestDASHSwitchingProbabilityMoves(t *testing.T) {
	d := dashForTest(false)
	p0 := d.P()
	// Pretend IPs were served much more than intensive CPUs.
	d.servedNonUrgentIP.Store(100)
	d.servedIntensiveCPU.Store(0)
	d.Tick(d.nextSwitch)
	if d.P() <= p0 {
		t.Fatalf("P should rise when CPU underserved: %v -> %v", p0, d.P())
	}
	d.servedNonUrgentIP.Store(0)
	d.servedIntensiveCPU.Store(100)
	p1 := d.P()
	d.Tick(d.nextSwitch)
	if d.P() >= p1 {
		t.Fatalf("P should fall when IP underserved: %v -> %v", p1, d.P())
	}
}

func TestHMCRoutesByClient(t *testing.T) {
	g := dram.LPDDR3Geometry(2)
	cfg := HMCDRAM("hmc", g, dram.LPDDR3Timing(1333))
	c := dram.NewController(cfg, nil)
	c.Push(&mem.Request{Addr: 0, Size: 64, Client: mem.ClientCPU})
	c.Push(&mem.Request{Addr: 0, Size: 64, Client: mem.ClientGPU})
	c.Push(&mem.Request{Addr: 64, Size: 64, Client: mem.ClientDisplay})
	if len(c.Channels[0].Queue) != 1 {
		t.Fatalf("CPU channel queue = %d, want 1", len(c.Channels[0].Queue))
	}
	if len(c.Channels[1].Queue) != 2 {
		t.Fatalf("IP channel queue = %d, want 2", len(c.Channels[1].Queue))
	}
	// IP channel mapping spreads consecutive columns across banks.
	ipMap := c.Channels[1].Mapping()
	stride := uint64(ipMap.ColumnBytes)
	l0 := ipMap.Decode(0)
	l1 := ipMap.Decode(stride)
	if l0.Bank == l1.Bank {
		t.Fatal("line-striped IP mapping should change bank between consecutive columns")
	}
	cpuMap := c.Channels[0].Mapping()
	c0, c1 := cpuMap.Decode(0), cpuMap.Decode(stride)
	if c0.Bank != c1.Bank || c0.Row != c1.Row {
		t.Fatal("page-striped CPU mapping should keep consecutive columns in one row")
	}
}

func TestBaselineConfigShape(t *testing.T) {
	g := dram.LPDDR3Geometry(2)
	cfg := BaselineDRAM("bas", g, dram.LPDDR3Timing(1333))
	if cfg.Scheduler.Name() != "FR-FCFS" {
		t.Fatalf("baseline scheduler = %s", cfg.Scheduler.Name())
	}
	if cfg.Assign != nil {
		t.Fatal("baseline must not source-route")
	}
}

func TestDASHDRAMWiring(t *testing.T) {
	g := dram.LPDDR3Geometry(2)
	cfg, d := DASHDRAM("dash", g, dram.LPDDR3Timing(1333), DefaultDASHConfig(4, true))
	if cfg.Scheduler != dram.Scheduler(d) {
		t.Fatal("returned DASH must be the attached scheduler")
	}
	if d.Name() != "DASH-DTB" {
		t.Fatalf("name = %s", d.Name())
	}
	if NewDASH(DefaultDASHConfig(4, false)).Name() != "DASH-DCB" {
		t.Fatal("DCB name wrong")
	}
}
