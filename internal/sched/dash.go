// Package sched implements the SoC memory-scheduling proposals the paper
// re-evaluates in Case Study I: the DASH deadline-aware scheduler (Usui
// et al., building on TCM clustering) and the HMC heterogeneous
// memory-controller organization (Nachiappan et al.). Both plug into the
// dram.Controller; the baseline is dram.FRFCFS.
package sched

import (
	"math/rand"
	"sort"
	"sync/atomic"

	"emerald/internal/dram"
	"emerald/internal/mem"
)

// DASHConfig mirrors the paper's Table 3.
type DASHConfig struct {
	SchedulingUnit    uint64  // cycles between urgency re-evaluation
	SwitchingUnit     uint64  // cycles between probability updates
	QuantumLength     uint64  // cycles per TCM clustering quantum
	ClusterFactor     float64 // TCM ClusterThresh
	EmergentThreshold float64 // elapsed fraction after which an IP turns urgent
	GPUEmergent       float64 // GPU-specific emergent threshold
	// UseSystemBW selects the DTB variant (cluster against total system
	// bandwidth) versus DCB (CPU-only bandwidth). The paper evaluates
	// both because the TCM definition is ambiguous for SoCs (§5.1.1).
	UseSystemBW bool
	NumCPUs     int
	Seed        int64
}

// DefaultDASHConfig returns Table 3's parameters.
func DefaultDASHConfig(numCPUs int, useSystemBW bool) DASHConfig {
	return DASHConfig{
		SchedulingUnit:    1000,
		SwitchingUnit:     500,
		QuantumLength:     1_000_000,
		ClusterFactor:     0.15,
		EmergentThreshold: 0.8,
		GPUEmergent:       0.9,
		UseSystemBW:       useSystemBW,
		NumCPUs:           numCPUs,
		Seed:              1,
	}
}

// ipKey identifies one IP block.
type ipKey struct {
	client mem.Client
	id     int
}

type ipState struct {
	period     uint64 // frame period in cycles
	frameStart uint64
	progress   float64 // fraction of this frame's work completed
	urgent     bool
	emergent   float64 // per-IP emergent threshold
}

// DASH is the deadline-aware scheduler. The SoC model feeds it frame
// progress via StartFrame/ReportProgress; the scheduler classifies CPU
// cores into TCM-style bandwidth clusters each quantum.
type DASH struct {
	cfg DASHConfig
	rng *rand.Rand

	ips map[ipKey]*ipState

	// Clustering state. The byte/served tallies are bumped from Pick,
	// which the parallel tick engine calls concurrently across DRAM
	// channel shards; additions commute, so atomics keep the quantum
	// totals exact. Everything else is read-only during the channel
	// phase and mutated only in Tick (coordinator).
	cpuBytes  []atomic.Uint64 // bytes this quantum, per CPU core
	ipBytes   atomic.Uint64   // IP bytes this quantum (for DTB)
	intensive []bool          // per-core: memory-intensive this quantum?

	// Probabilistic switching state.
	p                  float64 // probability intensive CPU beats non-urgent IP
	servedIntensiveCPU atomic.Uint64
	servedNonUrgentIP  atomic.Uint64
	coinIsCPU          bool // this switching-window coin flip

	nextSchedule, nextSwitch, nextQuantum uint64
}

// NewDASH creates the scheduler.
func NewDASH(cfg DASHConfig) *DASH {
	d := &DASH{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		ips:       make(map[ipKey]*ipState),
		cpuBytes:  make([]atomic.Uint64, cfg.NumCPUs),
		intensive: make([]bool, cfg.NumCPUs),
		p:         0.5,
	}
	d.coinIsCPU = d.rng.Float64() < d.p
	return d
}

// SchedulingUnit returns the configured urgency re-evaluation interval
// in cycles — the cadence at which the SoC must refresh DASH's frame
// progress feedback (Table 3).
func (d *DASH) SchedulingUnit() uint64 { return d.cfg.SchedulingUnit }

// Name implements dram.Scheduler.
func (d *DASH) Name() string {
	if d.cfg.UseSystemBW {
		return "DASH-DTB"
	}
	return "DASH-DCB"
}

// RegisterIP declares an IP block with its frame period in cycles. The
// paper classifies both the GPU (33 ms) and the display (16 ms) as
// long-deadline IPs.
func (d *DASH) RegisterIP(client mem.Client, id int, periodCycles uint64) {
	emergent := d.cfg.EmergentThreshold
	if client == mem.ClientGPU {
		emergent = d.cfg.GPUEmergent
	}
	d.ips[ipKey{client, id}] = &ipState{period: periodCycles, emergent: emergent}
}

// StartFrame resets an IP's deadline window at the given cycle.
func (d *DASH) StartFrame(client mem.Client, id int, cycle uint64) {
	if ip, ok := d.ips[ipKey{client, id}]; ok {
		ip.frameStart = cycle
		ip.progress = 0
		ip.urgent = false
	}
}

// ReportProgress updates the fraction [0,1] of the IP's current frame
// workload that has completed. The SoC calls this as rendering/scan-out
// advances; DASH's novelty is exactly this deadline feedback.
func (d *DASH) ReportProgress(client mem.Client, id int, progress float64) {
	if ip, ok := d.ips[ipKey{client, id}]; ok {
		ip.progress = progress
	}
}

// Urgent reports whether an IP is currently classified urgent (test hook).
func (d *DASH) Urgent(client mem.Client, id int) bool {
	if ip, ok := d.ips[ipKey{client, id}]; ok {
		return ip.urgent
	}
	return false
}

// Intensive reports a CPU core's current cluster (test hook).
func (d *DASH) Intensive(core int) bool {
	if core < 0 || core >= len(d.intensive) {
		return false
	}
	return d.intensive[core]
}

// P returns the current switching probability (test hook).
func (d *DASH) P() float64 { return d.p }

// Tick implements dram.Scheduler: periodic urgency evaluation, switching
// probability update, and TCM quantum re-clustering.
func (d *DASH) Tick(cycle uint64) {
	if cycle >= d.nextSchedule {
		d.nextSchedule = cycle + d.cfg.SchedulingUnit
		for _, ip := range d.ips {
			if ip.period == 0 {
				continue
			}
			elapsed := float64(cycle-ip.frameStart) / float64(ip.period)
			// Urgent when materially behind the deadline-proportional
			// expected progress (the emergent threshold sets how much
			// slack the IP gets: 0.9 for the GPU, 0.8 otherwise), or in
			// the tail of the period with the frame unfinished.
			ip.urgent = ip.progress < 1 &&
				(ip.progress < ip.emergent*elapsed || elapsed > ip.emergent)
		}
	}
	if cycle >= d.nextSwitch {
		d.nextSwitch = cycle + d.cfg.SwitchingUnit
		// Balance service between intensive CPU and non-urgent IPs by
		// steering P toward whichever was underserved.
		cpu, ip := d.servedIntensiveCPU.Load(), d.servedNonUrgentIP.Load()
		if cpu > ip {
			d.p -= 0.05
		} else if cpu < ip {
			d.p += 0.05
		}
		if d.p < 0.05 {
			d.p = 0.05
		}
		if d.p > 0.95 {
			d.p = 0.95
		}
		d.servedIntensiveCPU.Store(0)
		d.servedNonUrgentIP.Store(0)
		d.coinIsCPU = d.rng.Float64() < d.p
	}
	if cycle >= d.nextQuantum {
		d.nextQuantum = cycle + d.cfg.QuantumLength
		d.recluster()
	}
}

// NextWake implements dram.Scheduler: the earliest of the three
// periodic deadlines (urgency evaluation, switching-probability
// update, quantum re-clustering). DASH is never fully quiescent — its
// windows advance with wall-clock cycles — so the tick loops' idle
// jumps are clamped to these deadlines, keeping the deadline checks
// (and the rng draw per switching window) on exactly the same cycles
// as an unskipped run.
func (d *DASH) NextWake(cycle uint64) uint64 {
	w := d.nextSchedule
	if d.nextSwitch < w {
		w = d.nextSwitch
	}
	if d.nextQuantum < w {
		w = d.nextQuantum
	}
	if w <= cycle {
		return cycle
	}
	return w
}

// recluster performs TCM-style clustering: cores are sorted by bandwidth
// usage and the lowest-usage cores whose cumulative share stays within
// ClusterFactor of the clustering total form the non-intensive cluster.
func (d *DASH) recluster() {
	var cpuTotal uint64
	for i := range d.cpuBytes {
		cpuTotal += d.cpuBytes[i].Load()
	}
	clusterTotal := cpuTotal
	if d.cfg.UseSystemBW {
		clusterTotal += d.ipBytes.Load()
	}
	type coreBW struct {
		core  int
		bytes uint64
	}
	cores := make([]coreBW, len(d.cpuBytes))
	for i := range d.cpuBytes {
		cores[i] = coreBW{i, d.cpuBytes[i].Load()}
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i].bytes < cores[j].bytes })
	budget := uint64(d.cfg.ClusterFactor * float64(clusterTotal))
	var used uint64
	for i := range d.intensive {
		d.intensive[i] = true
	}
	for _, c := range cores {
		if used+c.bytes <= budget {
			used += c.bytes
			d.intensive[c.core] = false
		}
	}
	for i := range d.cpuBytes {
		d.cpuBytes[i].Store(0)
	}
	d.ipBytes.Store(0)
}

// priority classes, lower wins.
const (
	prioUrgentIP = iota
	prioNonIntensiveCPU
	prioMid // shared by non-urgent IP and intensive CPU (probabilistic)
	prioLast
)

func (d *DASH) classify(r *mem.Request) int {
	if r.Client.IsIP() {
		if ip, ok := d.ips[ipKey{r.Client, r.ClientID}]; ok && ip.urgent {
			return prioUrgentIP
		}
		if d.coinIsCPU {
			return prioLast // intensive CPU wins this window
		}
		return prioMid
	}
	if r.ClientID < len(d.intensive) && !d.intensive[r.ClientID] {
		return prioNonIntensiveCPU
	}
	if d.coinIsCPU {
		return prioMid
	}
	return prioLast
}

// Pick implements dram.Scheduler: highest priority class first, then
// FR-FCFS within the class.
func (d *DASH) Pick(ch *dram.Channel, cycle uint64) int {
	best := -1
	bestClass := prioLast + 1
	bestHit := false
	for i, r := range ch.Queue {
		if !ch.BankReady(r, cycle) {
			continue
		}
		class := d.classify(r)
		hit := ch.IsRowHit(r)
		if class < bestClass || (class == bestClass && hit && !bestHit) {
			best, bestClass, bestHit = i, class, hit
		}
	}
	if best >= 0 {
		r := ch.Queue[best]
		// Bandwidth accounting for clustering and switching balance.
		if r.Client == mem.ClientCPU {
			if r.ClientID < len(d.cpuBytes) {
				d.cpuBytes[r.ClientID].Add(uint64(r.Size))
			}
			if r.ClientID < len(d.intensive) && d.intensive[r.ClientID] {
				d.servedIntensiveCPU.Add(1)
			}
		} else {
			d.ipBytes.Add(uint64(r.Size))
			if bestClass != prioUrgentIP {
				d.servedNonUrgentIP.Add(1)
			}
		}
	}
	return best
}

var _ dram.Scheduler = (*DASH)(nil)
