package sched

import (
	"emerald/internal/dram"
	"emerald/internal/mem"
)

// BaselineDRAM returns the paper's baseline DRAM configuration (Table 4):
// all channels page-striped ("Row:Rank:Bank:Column:Channel") with FR-FCFS
// scheduling and address-interleaved channel selection.
func BaselineDRAM(name string, g dram.Geometry, t dram.Timing) dram.Config {
	return dram.Config{
		Name:      name,
		Geometry:  g,
		Timing:    t,
		Mappings:  []dram.Mapping{dram.MappingPageStriped(g)},
		Scheduler: dram.NewFRFCFS(),
	}
}

// HMCDRAM returns the heterogeneous memory controller organization of
// Nachiappan et al. (Table 4): with 2 channels, channel 0 is dedicated to
// CPU traffic using the locality-preserving page-striped mapping, and
// channel 1 to IP traffic using the parallelism-oriented line-striped
// mapping. Both use FR-FCFS. Channel geometry must have >= 2 channels.
//
// Because each traffic class owns its channel outright, the decoded
// channel field of the per-channel mapping is ignored — the Assign hook
// routes by traffic source, which is exactly HMC's organization (and the
// source of its imbalance problems in the paper's Figure 10).
func HMCDRAM(name string, g dram.Geometry, t dram.Timing) dram.Config {
	cpuMap := dram.MappingPageStriped(singleChannel(g))
	ipMap := dram.MappingLineStriped(singleChannel(g))
	mappings := make([]dram.Mapping, g.Channels)
	for i := range mappings {
		if i == 0 {
			mappings[i] = cpuMap
		} else {
			mappings[i] = ipMap
		}
	}
	return dram.Config{
		Name:     name,
		Geometry: g,
		Timing:   t,
		Mappings: mappings,
		Assign: func(r *mem.Request) int {
			if r.Client == mem.ClientCPU {
				return 0
			}
			return 1
		},
		Scheduler: dram.NewFRFCFS(),
	}
}

// DASHDRAM returns the baseline organization with the DASH scheduler
// attached; the returned *DASH must be fed RegisterIP/StartFrame/
// ReportProgress by the system model.
func DASHDRAM(name string, g dram.Geometry, t dram.Timing, cfg DASHConfig) (dram.Config, *DASH) {
	d := NewDASH(cfg)
	c := dram.Config{
		Name:      name,
		Geometry:  g,
		Timing:    t,
		Mappings:  []dram.Mapping{dram.MappingPageStriped(g)},
		Scheduler: d,
	}
	return c, d
}

// singleChannel returns g reshaped to one channel, for per-channel
// mappings under source-routed assignment.
func singleChannel(g dram.Geometry) dram.Geometry {
	g.Channels = 1
	return g
}
