package exp

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"emerald/internal/dram"
	"emerald/internal/geom"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/par"
	"emerald/internal/shader"
	"emerald/internal/stats"
)

// The parallel tick engine must be bit-identical to the sequential
// engine: every counter, every framebuffer byte, every reported frame
// time. These tests hash the complete observable state of a run —
// stats registry, framebuffer, final cycle, results summary — and
// demand equality between -workers 1 and -workers 4.

// socStateDigest runs one Case Study I cell and hashes its observable
// end state.
func socStateDigest(t *testing.T, model int, cfg MemConfig, pool *par.Pool, noSkip, noWheel bool) string {
	t.Helper()
	opt := Quick()
	if testing.Short() {
		// Race-detector runs (scripts/check.sh uses -race -short) pay
		// ~20x per simulated cycle; one frame still exercises every
		// shard boundary.
		opt.Frames, opt.WarmupFrames = 1, 0
	}
	opt.Pool = pool
	opt.NoSkip = noSkip
	opt.NoWheel = noWheel
	reg := stats.NewRegistry()
	s, err := buildSoC(model, cfg, opt.RegularMbps, opt, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(opt.BudgetCycles); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fb := make([]byte, 3*opt.Width*opt.Height*4)
	s.Mem.Read(0x8000_0000, fb)
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(fb)
	fmt.Fprintf(h, "cycle=%d res=%+v", s.Cycle(), s.Results("digest"))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// standaloneStateDigest renders two DFSL frames on the standalone GPU
// and hashes the observable end state.
func standaloneStateDigest(t *testing.T, pool *par.Pool, noSkip, noWheel bool) string {
	t.Helper()
	cfg := gpu.CaseStudyIIConfig()
	sys := gpu.NewStandalone(cfg, dram.Config{
		Geometry: dram.LPDDR3Geometry(4),
		Timing:   dram.LPDDR3Timing(1600),
	}, nil)
	sys.SetParallel(pool)
	sys.SetIdleSkip(!noSkip)
	sys.SetEventWheel(!noWheel)
	ctx := gl.NewContext(sys.Mem(), 0x1000_0000, 256<<20)
	ctx.Submit = func(call *gpu.DrawCall) error { return sys.GPU.SubmitDraw(call, nil) }
	ctx.OnClearDepth = sys.GPU.ClearHiZ
	scene, err := geom.DFSLWorkload(geom.W3Cube)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Viewport(160, 120)
	if err := ctx.UseProgram(shader.VSTransform, shader.FSTexturedEarlyZ); err != nil {
		t.Fatal(err)
	}
	tex, err := ctx.UploadTexture(scene.Texture)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		t.Fatal(err)
	}
	mesh, err := ctx.UploadMesh(scene.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	for frame := 0; frame < 2; frame++ {
		ctx.Clear(0xFF101020, true)
		ctx.SetMVP(scene.MVP(frame, 160.0/120.0))
		if err := ctx.DrawMesh(mesh); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.RunUntilIdle(4_000_000_000); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.Reg.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	cs := ctx.ColorSurface()
	fb := make([]byte, cs.Width*cs.Height*4)
	sys.Mem().Read(cs.Base, fb)
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(fb)
	fmt.Fprintf(h, "cycle=%d", sys.Cycle())
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestParallelDeterminismSoC checks the full-SoC path (memstudy
// workloads): CPU/display shards, GPU clusters, DRAM channels.
func TestParallelDeterminismSoC(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	cases := []struct {
		model int
		cfg   MemConfig
	}{
		{geom.M2Cube, BAS},
		{geom.M1Chair, DTB},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		seq := socStateDigest(t, c.model, c.cfg, nil, false, false)
		parl := socStateDigest(t, c.model, c.cfg, pool, false, false)
		t.Logf("%s/%s state digest: %s", modelName(c.model), c.cfg, seq)
		if seq != parl {
			t.Errorf("%s/%s: workers=1 digest %s != workers=4 digest %s",
				modelName(c.model), c.cfg, seq, parl)
		}
	}
}

// TestParallelDeterminismStandalone checks the standalone-GPU path
// (dfsl workloads): cluster shards and DRAM channels.
func TestParallelDeterminismStandalone(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	seq := standaloneStateDigest(t, nil, false, false)
	parl := standaloneStateDigest(t, pool, false, false)
	t.Logf("standalone W3 state digest: %s", seq)
	if seq != parl {
		t.Errorf("workers=1 digest %s != workers=4 digest %s", seq, parl)
	}
}

// TestSkipDeterminismSoC checks that event-driven idle cycle-skipping
// is invisible: the complete observable end state of a run (registry
// JSON, framebuffer, final cycle, results) must be bit-identical with
// skipping on and off, under both the sequential and the parallel tick
// engine. Per-component idle gating applies in both modes, so the only
// difference the skip arm may introduce is which cycles the top-level
// loop visits — and those must all be no-ops.
func TestSkipDeterminismSoC(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	cases := []struct {
		model int
		cfg   MemConfig
	}{
		{geom.M2Cube, BAS},
		{geom.M1Chair, DTB},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		for _, tc := range []struct {
			name string
			pool *par.Pool
		}{{"workers1", nil}, {"workers4", pool}} {
			skip := socStateDigest(t, c.model, c.cfg, tc.pool, false, false)
			noskip := socStateDigest(t, c.model, c.cfg, tc.pool, true, false)
			if skip != noskip {
				t.Errorf("%s/%s %s: skip digest %s != no-skip digest %s",
					modelName(c.model), c.cfg, tc.name, skip, noskip)
			}
		}
	}
}

// TestSkipDeterminismStandalone is the standalone-GPU (dfsl W3)
// counterpart of TestSkipDeterminismSoC.
func TestSkipDeterminismStandalone(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	for _, tc := range []struct {
		name string
		pool *par.Pool
	}{{"workers1", nil}, {"workers4", pool}} {
		skip := standaloneStateDigest(t, tc.pool, false, false)
		noskip := standaloneStateDigest(t, tc.pool, true, false)
		if skip != noskip {
			t.Errorf("%s: skip digest %s != no-skip digest %s", tc.name, skip, noskip)
		}
	}
}

// TestWheelDeterminismSoC checks that the per-shard event wheel is
// invisible: parking a CPU core, the display, a GPU cluster or a DRAM
// channel must only elide ticks that were gated no-ops anyway, so the
// complete observable end state matches a run that ticked every shard
// every cycle — under both the sequential and the parallel engine.
func TestWheelDeterminismSoC(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	cases := []struct {
		model int
		cfg   MemConfig
	}{
		{geom.M2Cube, BAS},
		{geom.M1Chair, DTB},
	}
	if testing.Short() {
		cases = cases[:1]
	}
	for _, c := range cases {
		for _, tc := range []struct {
			name string
			pool *par.Pool
		}{{"workers1", nil}, {"workers4", pool}} {
			wheel := socStateDigest(t, c.model, c.cfg, tc.pool, false, false)
			nowheel := socStateDigest(t, c.model, c.cfg, tc.pool, false, true)
			if wheel != nowheel {
				t.Errorf("%s/%s %s: wheel digest %s != no-wheel digest %s",
					modelName(c.model), c.cfg, tc.name, wheel, nowheel)
			}
		}
	}
}

// TestWheelDeterminismStandalone is the standalone-GPU (dfsl W3)
// counterpart of TestWheelDeterminismSoC.
func TestWheelDeterminismStandalone(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	for _, tc := range []struct {
		name string
		pool *par.Pool
	}{{"workers1", nil}, {"workers4", pool}} {
		wheel := standaloneStateDigest(t, tc.pool, false, false)
		nowheel := standaloneStateDigest(t, tc.pool, false, true)
		if wheel != nowheel {
			t.Errorf("%s: wheel digest %s != no-wheel digest %s", tc.name, wheel, nowheel)
		}
	}
}
