package exp

import (
	"context"
	"fmt"
	"strings"

	"emerald/internal/dram"
	"emerald/internal/emtrace"
	"emerald/internal/geom"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/guard"
	"emerald/internal/mathx"
	"emerald/internal/shader"
	"emerald/internal/stats"
)

// CS2Renderer drives Case Study II: frames of one workload on the
// standalone Table 7 GPU, with the work-tile granularity adjustable
// between frames.
type CS2Renderer struct {
	S     *gpu.Standalone
	Ctx   *gl.Context
	Scene *geom.Scene
	Reg   *stats.Registry

	mesh   gl.MeshHandle
	frame  int
	aspect float32
	budget uint64
	trace  *emtrace.Tracer
	ctx    context.Context
}

// NewCS2Renderer builds the standalone system for one workload. When
// opt.Stats is set the system publishes its counters there (cmd/dfsl's
// -stats-json); per-figure delta math (Fig18's miss sums) subtracts a
// baseline around each measured frame, so a registry shared across
// sequential systems stays correct.
func NewCS2Renderer(scene *geom.Scene, opt Options) (*CS2Renderer, error) {
	reg := opt.Stats
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s := gpu.NewStandalone(gpu.CaseStudyIIConfig(), dram.Config{
		Geometry: dram.LPDDR3Geometry(4),
		Timing:   dram.LPDDR3Timing(1600),
	}, reg)
	ctx := gl.NewContext(s.Mem(), 0x1000_0000, 256<<20)
	ctx.Submit = func(call *gpu.DrawCall) error { return s.GPU.SubmitDraw(call, nil) }
	ctx.OnClearDepth = s.GPU.ClearHiZ

	if opt.Trace != nil {
		s.AttachTracer(opt.Trace)
	}
	if opt.guardOn() {
		s.AttachGuard(guard.NewChecker())
	}
	s.SetWatchdog(opt.WatchdogCycles)
	s.SetParallel(opt.Pool)
	s.SetIdleSkip(!opt.NoSkip)
	s.SetEventWheel(!opt.NoWheel)
	s.SetProbe(opt.Probe)
	r := &CS2Renderer{
		S: s, Ctx: ctx, Scene: scene, Reg: reg,
		aspect: float32(opt.CS2Width) / float32(opt.CS2Height),
		budget: opt.BudgetCycles,
		trace:  opt.Trace,
		ctx:    opt.Ctx,
	}
	ctx.Viewport(opt.CS2Width, opt.CS2Height)
	var err error
	if r.mesh, err = ctx.UploadMesh(scene.Mesh); err != nil {
		return nil, err
	}
	tex, err := ctx.UploadTexture(scene.Texture)
	if err != nil {
		return nil, err
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		return nil, err
	}
	fs := shader.FSTexturedEarlyZ
	if scene.Translucent {
		fs = shader.FSTexturedBlend
		ctx.Enable(gl.Blend)
		ctx.DepthMask(false)
		ctx.SetAlpha(0.6)
	}
	if err := ctx.UseProgram(shader.VSTransform, fs); err != nil {
		return nil, err
	}
	ctx.SetLight(mathx.V3(0.4, 0.5, 0.8).Normalize())
	return r, nil
}

// RenderFrame renders the next frame at the given WT size and returns
// its execution cycles. advance controls whether the camera moves
// (temporal coherence) or the same frame is re-rendered (WT sweeps).
func (r *CS2Renderer) RenderFrame(wt int, advance bool) (uint64, error) {
	r.S.GPU.SetWT(wt)
	r.Ctx.Clear(0xFF101020, true)
	r.Ctx.SetMVP(r.Scene.MVP(r.frame, r.aspect))
	start := r.S.Cycle()
	if err := r.Ctx.DrawMesh(r.mesh); err != nil {
		return 0, err
	}
	if _, err := r.S.RunUntilIdleCtx(r.ctx, r.budget); err != nil {
		return 0, err
	}
	if advance {
		r.frame++
	}
	r.trace.FrameMark()
	return r.S.Cycle() - start, nil
}

// missSum sums a per-core L1 miss counter across every GPU core.
func (r *CS2Renderer) missSum(cacheName string) int64 {
	var sum int64
	for _, n := range r.Reg.Names() {
		if strings.Contains(n, "."+cacheName+".misses") {
			sum += r.Reg.Value(strings.TrimPrefix(n, ""))
		}
	}
	return sum
}

// WTSweep renders the same frame once per WT size in [1, maxWT] and
// returns per-WT execution cycles (after one warmup render).
func (r *CS2Renderer) WTSweep(maxWT int) ([]uint64, error) {
	if _, err := r.RenderFrame(1, false); err != nil { // warmup
		return nil, err
	}
	out := make([]uint64, maxWT)
	for wt := 1; wt <= maxWT; wt++ {
		c, err := r.RenderFrame(wt, false)
		if err != nil {
			return nil, err
		}
		out[wt-1] = c
	}
	return out, nil
}

// RunWTSweep runs one workload's WT sweep (Figure 17's unit of work):
// per-WT frame execution cycles for sizes 1..opt.MaxWT.
func RunWTSweep(workload int, opt Options) ([]uint64, error) {
	scene, err := geom.DFSLWorkload(workload)
	if err != nil {
		return nil, err
	}
	r, err := NewCS2Renderer(scene, opt)
	if err != nil {
		return nil, err
	}
	times, err := r.WTSweep(opt.MaxWT)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", scene.Name, err)
	}
	return times, nil
}

// Fig17 reproduces Figure 17: frame execution time for WT sizes 1..MaxWT
// per workload, normalized to WT=1.
func Fig17(opt Options, workloads []int) (*stats.Table, error) {
	if len(workloads) == 0 {
		workloads = allWorkloads()
	}
	sweeps := make(map[int][]uint64)
	for _, w := range workloads {
		times, err := RunWTSweep(w, opt)
		if err != nil {
			return nil, err
		}
		sweeps[w] = times
	}
	return Fig17Table(workloads, sweeps, opt.MaxWT), nil
}

// Fig18 reproduces Figure 18: W1 execution time and L1 cache misses
// (color=L1D, texture=L1T, depth=L1Z) versus WT size, normalized to
// WT=1.
func Fig18(opt Options) (*stats.Table, error) {
	scene, err := geom.DFSLWorkload(geom.W1Sibenik)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Figure 18: W1 execution time and L1 misses vs WT (normalized to WT=1)",
		"WT", "exec_time", "color_misses", "texture_misses", "depth_misses")

	var base [4]float64
	for wt := 1; wt <= opt.MaxWT; wt++ {
		// Fresh system per WT so cache-miss counters are isolated.
		r, err := NewCS2Renderer(scene, opt)
		if err != nil {
			return nil, err
		}
		if _, err := r.RenderFrame(wt, false); err != nil { // warmup
			return nil, err
		}
		d0 := [3]int64{r.missSum("l1d"), r.missSum("l1t"), r.missSum("l1z")}
		cycles, err := r.RenderFrame(wt, false)
		if err != nil {
			return nil, err
		}
		vals := [4]float64{
			float64(cycles),
			float64(r.missSum("l1d") - d0[0]),
			float64(r.missSum("l1t") - d0[1]),
			float64(r.missSum("l1z") - d0[2]),
		}
		if wt == 1 {
			base = vals
		}
		norm := func(i int) float64 {
			if base[i] == 0 {
				return 0
			}
			return vals[i] / base[i]
		}
		t.AddRow(wt, norm(0), norm(1), norm(2), norm(3))
	}
	return t, nil
}

// DFSLPolicy identifies a Figure 19 configuration.
type DFSLPolicy int

// Figure 19 policies.
const (
	MLB  DFSLPolicy = iota // maximum load balance: WT=1
	MLC                    // maximum locality: WT=MaxWT
	SOPT                   // static best-average WT across workloads
	DFSL                   // the dynamic controller (Algorithm 1)
)

func (p DFSLPolicy) String() string {
	return [...]string{"MLB", "MLC", "SOPT", "DFSL"}[p]
}

// Fig19 reproduces Figure 19: average frame time under MLB / MLC / SOPT
// / DFSL per workload, reported as speedup normalized to MLB (paper:
// DFSL ~+19% over MLB, ~+7.3% over SOPT).
func Fig19(opt Options, workloads []int) (*stats.Table, map[int]map[DFSLPolicy]float64, error) {
	if len(workloads) == 0 {
		workloads = allWorkloads()
	}
	// Pass 1: per-workload WT sweeps to determine SOPT.
	sweeps := make(map[int][]uint64)
	for _, w := range workloads {
		times, err := RunWTSweep(w, opt)
		if err != nil {
			return nil, nil, err
		}
		sweeps[w] = times
	}
	sopt := SOPTFromSweeps(sweeps, opt.MaxWT)

	// Pass 2: run each policy over an identical frame sequence.
	raw := make(map[int]map[DFSLPolicy]float64)
	for _, w := range workloads {
		raw[w] = make(map[DFSLPolicy]float64)
		for _, p := range AllDFSLPolicies() {
			avg, err := RunCS2Policy(w, p, sopt, opt)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", workloadName(w), p, err)
			}
			raw[w][p] = avg
		}
	}
	return Fig19Table(workloads, raw, sopt, opt.MaxWT, opt.DFSLRunFrames), raw, nil
}

// RunCS2Policy runs one workload under one Figure 19 policy (Figure
// 19's unit of work) and returns the average frame execution cycles
// over the evaluation + run phases. sopt is the static WT used when
// policy is SOPT (ignored otherwise).
func RunCS2Policy(workload int, policy DFSLPolicy, sopt int, opt Options) (float64, error) {
	scene, err := geom.DFSLWorkload(workload)
	if err != nil {
		return 0, err
	}
	r, err := NewCS2Renderer(scene, opt)
	if err != nil {
		return 0, err
	}
	evalFrames := opt.MaxWT // DFSL evaluation phase length
	totalFrames := evalFrames + opt.DFSLRunFrames
	ctrl := gpu.NewDFSL(1, opt.MaxWT, opt.DFSLRunFrames)
	// One untimed warmup frame so cold caches do not contaminate the
	// first evaluation phase (all policies get the same treatment).
	if _, err := r.RenderFrame(1, true); err != nil {
		return 0, err
	}
	var sum float64
	for f := 0; f < totalFrames; f++ {
		wt := 1
		switch policy {
		case MLB:
			wt = 1
		case MLC:
			wt = opt.MaxWT
		case SOPT:
			wt = sopt
		case DFSL:
			wt = ctrl.NextWT()
		}
		cycles, err := r.RenderFrame(wt, true)
		if err != nil {
			return 0, err
		}
		if policy == DFSL {
			ctrl.ObserveFrame(cycles)
		}
		sum += float64(cycles)
	}
	return sum / float64(totalFrames), nil
}

func allWorkloads() []int {
	return []int{geom.W1Sibenik, geom.W2Spot, geom.W3Cube,
		geom.W4Suzanne, geom.W5SuzanneT, geom.W6Teapot}
}

func workloadName(w int) string {
	s, err := geom.DFSLWorkload(w)
	if err != nil {
		return fmt.Sprintf("W%d", w)
	}
	return s.Name
}
