package exp

import (
	"math"
	"testing"

	"emerald/internal/geom"
)

// The paper validates Emerald against Tegra silicon by correlating draw
// execution time (98%) and pixel fill rate (76.5%) across a benchmark
// set (§3.4). Hardware is out of reach here; the analogous internal
// check is that the model's draw time correlates strongly with the
// fragment work it is given, holding geometry fixed: one workload
// rendered across a range of resolutions.
func TestDrawTimeCorrelatesWithWork(t *testing.T) {
	var times, frags []float64
	for _, res := range [][2]int{{96, 72}, {128, 96}, {160, 120}, {224, 168}, {288, 216}} {
		opt := tinyOptions()
		opt.CS2Width, opt.CS2Height = res[0], res[1]
		scene, err := geom.DFSLWorkload(geom.W2Spot)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewCS2Renderer(scene, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RenderFrame(1, false); err != nil { // warmup
			t.Fatal(err)
		}
		f0 := r.S.GPU.FragsShaded()
		cycles, err := r.RenderFrame(1, false)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, float64(cycles))
		frags = append(frags, float64(r.S.GPU.FragsShaded()-f0))
	}
	r := pearson(times, frags)
	t.Logf("draw-time vs fragment-count correlation over resolutions: %.3f", r)
	if r < 0.8 {
		t.Fatalf("draw time poorly correlated with shaded work: r = %.3f", r)
	}
}

// Fill-rate sanity: pixels per cycle must rise when the screen doubles
// (more parallelism to exploit) and stay below the architectural bound
// of one TC tile launch per cluster per cycle.
func TestFillRateScales(t *testing.T) {
	rate := func(w, h int) float64 {
		opt := tinyOptions()
		opt.CS2Width, opt.CS2Height = w, h
		scene, err := geom.DFSLWorkload(geom.W3Cube)
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewCS2Renderer(scene, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.RenderFrame(1, false); err != nil {
			t.Fatal(err)
		}
		f0 := r.S.GPU.FragsShaded()
		cycles, err := r.RenderFrame(1, false)
		if err != nil {
			t.Fatal(err)
		}
		return float64(r.S.GPU.FragsShaded()-f0) / float64(cycles)
	}
	small := rate(64, 48)
	large := rate(128, 96)
	t.Logf("fill rate: %.3f px/cycle at 64x48, %.3f at 128x96", small, large)
	if large <= small {
		t.Fatalf("fill rate should improve with more fragments: %.3f vs %.3f", small, large)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	num := n*sxy - sx*sy
	den := math.Sqrt((n*sxx - sx*sx) * (n*syy - sy*sy))
	if den == 0 {
		return 0
	}
	return num / den
}
