// Package exp contains the experiment harnesses that regenerate every
// results figure of the paper's evaluation: Case Study I (Figures 9-14,
// memory organization & scheduling on the full SoC) and Case Study II
// (Figures 17-19, DFSL on the standalone GPU). Each harness returns a
// stats.Table shaped like the paper's plot, plus raw data for the
// benches and EXPERIMENTS.md.
package exp

import (
	"context"
	"fmt"
	"os"

	"emerald/internal/dram"
	"emerald/internal/emtrace"
	"emerald/internal/geom"
	"emerald/internal/guard"
	"emerald/internal/mem"
	"emerald/internal/par"
	"emerald/internal/sched"
	"emerald/internal/soc"
	"emerald/internal/stats"
	"emerald/internal/telemetry"
)

// Options scales the experiments. Quick() keeps the benchmark suite in
// CI territory; Paper() approaches the paper's parameters (long runs).
type Options struct {
	Width, Height int
	Frames        int // measured app frames (Case Study I)
	WarmupFrames  int
	DisplayPeriod uint64
	AppPeriod     uint64

	// DRAM data rates (Mb/s/pin). The paper uses 1333 regular / 133
	// high-load at full workload scale; with the scaled-down frames the
	// regular rate is scaled too, keeping demand/capacity ratios in the
	// paper's regime (see EXPERIMENTS.md).
	RegularMbps, HighMbps int

	// Case Study II.
	CS2Width, CS2Height int
	MaxWT               int
	DFSLRunFrames       int // run-phase length (paper: 100)

	BudgetCycles uint64

	// Trace, when non-nil, is attached to every system the harness
	// builds (GPU/SIMT/cache/DRAM/SoC event tracing).
	Trace *emtrace.Tracer

	// Stats, when non-nil, collects counters from every Case Study I
	// system the harness builds (unless a run supplies its own registry,
	// as TimelineRun does).
	Stats *stats.Registry

	// Pool, when non-nil with more than one worker, arms the
	// deterministic parallel tick engine on every system the harness
	// builds (see internal/par and the -workers flag on the cmd tools).
	// Results are bit-identical regardless of worker count.
	Pool *par.Pool

	// Ctx, when non-nil, cancels in-flight simulations: the run loops
	// poll it every ~1k simulated cycles, so a timeout or cancel stops
	// the tick loop mid-frame (used by the sweep service's per-job
	// timeouts). Nil means run to completion or budget.
	Ctx context.Context

	// WatchdogCycles, when non-zero, arms the forward-progress watchdog
	// on every system the harness builds: a run with no instruction
	// retired, no memory byte moved and no frame progressed for this
	// many cycles aborts with a guard.NoProgressError carrying a
	// diagnostic bundle instead of burning the cycle budget.
	WatchdogCycles uint64

	// Guard, when true, attaches a guard.Checker to every system the
	// harness builds, running the microarchitectural invariant probes
	// (MSHR accounting, SIMT stack shape, DRAM bank legality, NoC
	// credits) each cycle. Also enabled by EMERALD_GUARD=1 in the
	// environment, the hook CI uses to run the test suite checked.
	Guard bool

	// NoSkip disables event-driven idle cycle-skipping in the tick
	// loops (the -no-skip flag). Results are bit-identical either way;
	// the escape hatch exists for perf comparison and debugging.
	NoSkip bool

	// NoWheel disables the per-shard event wheels (the -no-wheel flag):
	// every CPU core, display, GPU cluster and DRAM channel is ticked
	// every cycle even when provably parked. Results are bit-identical
	// either way; the escape hatch exists for perf comparison and
	// debugging.
	NoWheel bool

	// Probe, when non-nil, is attached to every system the harness
	// builds: the run loops publish live progress snapshots to it at
	// their 1024-cycle stride polls and serve its on-demand diagnostic
	// requests (the sweep service's per-job progress and /diag, the
	// CLIs' -progress tickers). Telemetry is read-only — results are
	// bit-identical with or without a probe.
	Probe *telemetry.Probe
}

// guardEnv force-enables invariant checking for every harness-built
// system (EMERALD_GUARD=1) without plumbing a flag through each test.
var guardEnv = os.Getenv("EMERALD_GUARD") == "1"

// guardOn reports whether this run should attach an invariant checker.
func (o Options) guardOn() bool { return o.Guard || guardEnv }

// Quick returns bench-friendly scaling.
func Quick() Options {
	return Options{
		Width: 128, Height: 96,
		Frames: 2, WarmupFrames: 1,
		DisplayPeriod: 140_000, AppPeriod: 280_000,
		RegularMbps: 1333, HighMbps: 266,
		CS2Width: 160, CS2Height: 120,
		MaxWT:         10,
		DFSLRunFrames: 60,
		BudgetCycles:  200_000_000,
	}
}

// Smoke returns the smallest sensible scaling — one measured frame per
// cell at a quarter of Quick's resolution — for service smoke tests and
// CI gates where wall time matters more than fidelity.
func Smoke() Options {
	return Options{
		Width: 64, Height: 48,
		Frames: 1, WarmupFrames: 1,
		DisplayPeriod: 70_000, AppPeriod: 140_000,
		RegularMbps: 1333, HighMbps: 266,
		CS2Width: 96, CS2Height: 72,
		MaxWT:         4,
		DFSLRunFrames: 8,
		BudgetCycles:  100_000_000,
	}
}

// Paper returns paper-scale parameters (slow; for cmd tools).
func Paper() Options {
	return Options{
		Width: 512, Height: 384,
		Frames: 4, WarmupFrames: 1,
		DisplayPeriod: 400_000, AppPeriod: 800_000,
		RegularMbps: 1333, HighMbps: 133,
		CS2Width: 512, CS2Height: 384,
		MaxWT:         10,
		DFSLRunFrames: 100,
		BudgetCycles:  4_000_000_000,
	}
}

// ByScale maps a scale name to its Options preset. It is the one
// parser behind the CLIs' -scale flags and the sweep service's
// Spec.Scale field, so every entry point accepts the same names.
func ByScale(name string) (Options, error) {
	switch name {
	case "smoke":
		return Smoke(), nil
	case "quick":
		return Quick(), nil
	case "paper":
		return Paper(), nil
	}
	return Options{}, fmt.Errorf("exp: unknown scale %q (want smoke|quick|paper)", name)
}

// MemConfig identifies a Case Study I memory configuration (Table 6).
type MemConfig int

// Case Study I configurations.
const (
	BAS MemConfig = iota // baseline FR-FCFS
	DCB                  // DASH, CPU-bandwidth clustering
	DTB                  // DASH, system-bandwidth clustering
	HMC                  // heterogeneous memory controller
)

func (c MemConfig) String() string {
	return [...]string{"BAS", "DCB", "DTB", "HMC"}[c]
}

// AllMemConfigs lists Table 6's configurations.
func AllMemConfigs() []MemConfig { return []MemConfig{BAS, DCB, DTB, HMC} }

// buildSoC assembles one Case Study I system.
func buildSoC(model int, cfg MemConfig, dataRateMbps int, opt Options, reg *stats.Registry) (*soc.SoC, error) {
	if reg == nil {
		reg = opt.Stats
	}
	scene, err := geom.SoCModel(model)
	if err != nil {
		return nil, err
	}
	sc := soc.DefaultConfig(scene)
	sc.Width, sc.Height = opt.Width, opt.Height
	// Scale the GPU cache hierarchy with the scaled assets (paper-scale
	// textures/framebuffers are ~10x larger), keeping the DRAM-traffic
	// regime of Table 5; raise LSU width so the GPU expresses its
	// memory-level parallelism against the slower scaled DRAM.
	sc.GPU.Core.L1D.SizeBytes = 8 * 1024
	sc.GPU.Core.L1T.SizeBytes = 16 * 1024
	sc.GPU.Core.L1Z.SizeBytes = 16 * 1024
	sc.GPU.Core.L1C.SizeBytes = 8 * 1024
	sc.GPU.Core.LSUWidth = 2
	sc.GPU.L2.SizeBytes = 64 * 1024
	sc.Frames = opt.Frames
	sc.WarmupFrames = opt.WarmupFrames
	sc.DisplayPeriod = opt.DisplayPeriod
	sc.AppPeriod = opt.AppPeriod

	g := dram.LPDDR3Geometry(2)
	timing := dram.LPDDR3Timing(dataRateMbps)
	switch cfg {
	case BAS:
		sc.DRAM = sched.BaselineDRAM("dram", g, timing)
	case DCB, DTB:
		dashCfg := sched.DefaultDASHConfig(sc.NumCPUs, cfg == DTB)
		// Scale the TCM quantum to the scaled frame period (Table 3's
		// 1M cycles assumes real-time frames).
		dashCfg.QuantumLength = opt.AppPeriod
		dcfg, dash := sched.DASHDRAM("dram", g, timing, dashCfg)
		sc.DRAM, sc.DASH = dcfg, dash
	case HMC:
		sc.DRAM = sched.HMCDRAM("dram", g, timing)
	}
	s, err := soc.New(sc, reg)
	if err != nil {
		return nil, err
	}
	if opt.Trace != nil {
		s.AttachTracer(opt.Trace)
	}
	if opt.guardOn() {
		s.AttachGuard(guard.NewChecker())
	}
	s.SetWatchdog(opt.WatchdogCycles)
	s.SetParallel(opt.Pool)
	s.SetIdleSkip(!opt.NoSkip)
	s.SetEventWheel(!opt.NoWheel)
	s.SetProbe(opt.Probe)
	return s, nil
}

// RunCaseStudyI runs one (model, config, load) cell and returns the
// results summary.
func RunCaseStudyI(model int, cfg MemConfig, dataRateMbps int, opt Options) (soc.Results, error) {
	s, err := buildSoC(model, cfg, dataRateMbps, opt, nil)
	if err != nil {
		return soc.Results{}, err
	}
	if err := s.RunCtx(opt.Ctx, opt.BudgetCycles); err != nil {
		return soc.Results{}, fmt.Errorf("%s/%s: %w", cfg, s.Cfg.Scene.Name, err)
	}
	return s.Results(cfg.String()), nil
}

// CaseStudyIMatrix runs every model x config cell at the given DRAM data
// rate and returns results indexed [model][config].
func CaseStudyIMatrix(dataRateMbps int, opt Options, models []int) (map[int]map[MemConfig]soc.Results, error) {
	if len(models) == 0 {
		models = []int{geom.M1Chair, geom.M2Cube, geom.M3Mask, geom.M4Triangles}
	}
	out := make(map[int]map[MemConfig]soc.Results)
	for _, m := range models {
		out[m] = make(map[MemConfig]soc.Results)
		for _, cfg := range AllMemConfigs() {
			r, err := RunCaseStudyI(m, cfg, dataRateMbps, opt)
			if err != nil {
				return nil, err
			}
			out[m][cfg] = r
		}
	}
	return out, nil
}

// modelNames maps model ids to display names.
func modelName(m int) string {
	s, err := geom.SoCModel(m)
	if err != nil {
		return fmt.Sprintf("M%d", m)
	}
	return s.Name
}

// Fig09 reproduces Figure 9: GPU execution time per frame under regular
// load, normalized to BAS (paper: DASH +19-20%, HMC ~2x).
func Fig09(opt Options, models []int) (*stats.Table, error) {
	res, err := CaseStudyIMatrix(opt.RegularMbps, opt, models)
	if err != nil {
		return nil, err
	}
	return Fig09Table(res), nil
}

// Fig11 reproduces Figure 11: HMC row-buffer hit rate and bytes accessed
// per row activation, normalized to BAS (paper: -15% and -60%).
func Fig11(opt Options, models []int) (*stats.Table, error) {
	res, err := CaseStudyIMatrix(opt.RegularMbps, opt, models)
	if err != nil {
		return nil, err
	}
	return Fig11Table(res), nil
}

// Fig12 reproduces Figure 12: total frame time and GPU rendering time
// under the high-load (133 Mb/s/pin) scenario, normalized to BAS.
func Fig12(opt Options, models []int) (*stats.Table, error) {
	res, err := CaseStudyIMatrix(opt.HighMbps, opt, models)
	if err != nil {
		return nil, err
	}
	return Fig12Table(res), nil
}

// Fig13 reproduces Figure 13: display requests serviced relative to BAS
// under high load (paper: DTB -85% on M1; HMC above 1 on the small
// models).
func Fig13(opt Options, models []int) (*stats.Table, error) {
	res, err := CaseStudyIMatrix(opt.HighMbps, opt, models)
	if err != nil {
		return nil, err
	}
	return Fig13Table(res), nil
}

// TimelineRun runs one cell with a bandwidth timeline attached and
// returns the timeline (Figures 10 and 14).
func TimelineRun(model int, cfg MemConfig, dataRateMbps int, opt Options, bucket uint64) (*stats.Timeline, error) {
	reg := opt.Stats
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s, err := buildSoC(model, cfg, dataRateMbps, opt, reg)
	if err != nil {
		return nil, err
	}
	tl := stats.NewTimeline(bucket)
	// Pin the column order up front: under the parallel engine the DRAM
	// channel shards record concurrently, so first-seen source order
	// would otherwise depend on thread interleaving.
	tl.Register(mem.ClientCPU.String(), mem.ClientGPU.String(),
		mem.ClientDisplay.String(), mem.ClientDMA.String())
	s.DRAM.Timeline = tl
	if err := s.RunCtx(opt.Ctx, opt.BudgetCycles); err != nil {
		return nil, err
	}
	return tl, nil
}

// Fig10 reproduces Figure 10: M3 under HMC, per-source DRAM bandwidth
// over time (paper: CPU bursts before each frame, idles during
// rendering).
func Fig10(opt Options) (*stats.Timeline, error) {
	return TimelineRun(geom.M3Mask, HMC, opt.RegularMbps, opt, opt.AppPeriod/16)
}

// Fig14 reproduces Figure 14: M1 rendering under BAS vs DASH-DTB at high
// load — two timelines showing CPU over-prioritization and display
// starvation under DTB.
func Fig14(opt Options) (bas, dtb *stats.Timeline, err error) {
	bas, err = TimelineRun(geom.M1Chair, BAS, opt.HighMbps, opt, opt.AppPeriod/16)
	if err != nil {
		return nil, nil, err
	}
	dtb, err = TimelineRun(geom.M1Chair, DTB, opt.HighMbps, opt, opt.AppPeriod/16)
	if err != nil {
		return nil, nil, err
	}
	return bas, dtb, nil
}

func sortedModels(res map[int]map[MemConfig]soc.Results) []int {
	var out []int
	for m := 1; m <= 8; m++ {
		if _, ok := res[m]; ok {
			out = append(out, m)
		}
	}
	return out
}
