package exp

import (
	"fmt"
	"testing"

	"emerald/internal/cache"
	"emerald/internal/cpu"
	"emerald/internal/dram"
	"emerald/internal/gfx"
	"emerald/internal/gpu"
	"emerald/internal/interconnect"
	"emerald/internal/mem"
	"emerald/internal/sched"
	"emerald/internal/shader"
	"emerald/internal/simt"
	"emerald/internal/soc"
)

// TestNextWakeContract drives every NextWake implementor through a
// crafted busy period and asserts the wake contract directly: whenever
// a component reports its next self-driven wake is strictly in the
// future, ticking it this cycle must not observably change its state.
// A violation is a late wake — the event wheel would fast-forward over
// a cycle where the component had real work, a silent-correctness bug
// the whole-system digest gates only catch after the divergence has
// already propagated. External stimulus (memory completions, new
// requests) is applied strictly after each cycle's check, mirroring
// how wheel Wake hooks fire between shard ticks.

// wakeProbe adapts one component to the shared contract checker.
type wakeProbe struct {
	wake func(cycle uint64) uint64
	sig  func() string      // observable-state signature
	tick func(cycle uint64) // the component's own tick
	post func(cycle uint64) // external stimulus, after the check
}

func checkWakeContract(t *testing.T, p wakeProbe, cycles uint64) {
	t.Helper()
	for c := uint64(0); c < cycles; c++ {
		w := p.wake(c)
		if w < c {
			t.Fatalf("cycle %d: NextWake = %d is in the past", c, w)
		}
		before := p.sig()
		p.tick(c)
		if after := p.sig(); after != before && w > c {
			t.Fatalf("cycle %d: NextWake = %d claims no self-driven change before then, but ticking changed state\n  before: %s\n  after:  %s",
				c, w, before, after)
		}
		if p.post != nil {
			p.post(c)
		}
	}
}

// completer models an ideal external memory: requests popped from a
// queue complete a fixed latency later (always after the cycle's
// contract check, like a real downstream component would).
type completer struct {
	lat  uint64
	pend []struct {
		at uint64
		r  *mem.Request
	}
}

func (cp *completer) drain(q *mem.Queue, cycle uint64) {
	for {
		r := q.Pop()
		if r == nil {
			break
		}
		cp.pend = append(cp.pend, struct {
			at uint64
			r  *mem.Request
		}{cycle + cp.lat, r})
	}
	keep := cp.pend[:0]
	for _, p := range cp.pend {
		if p.at <= cycle {
			p.r.Complete(cycle)
		} else {
			keep = append(keep, p)
		}
	}
	cp.pend = keep
}

// wakeEnv is a minimal WarpEnv for driving a bare SIMT core.
type wakeEnv struct{ m *mem.Memory }

func (e *wakeEnv) AttrIn(lane, slot int) ([4]float32, uint64)     { return [4]float32{}, 0 }
func (e *wakeEnv) OutWrite(lane, slot int, val [4]float32) uint64 { return 0 }
func (e *wakeEnv) Tex(lane, unit int, u, v float32) ([4]float32, [4]uint64) {
	return [4]float32{}, [4]uint64{}
}
func (e *wakeEnv) ZAddr(lane int) uint64 { return 0 }
func (e *wakeEnv) CAddr(lane int) uint64 { return 0 }
func (e *wakeEnv) ConstBase() uint64     { return 0 }
func (e *wakeEnv) SharedMem() []byte     { return nil }
func (e *wakeEnv) Memory() *mem.Memory   { return e.m }
func (e *wakeEnv) Retired(w *simt.Warp)  {}

func TestNextWakeContract(t *testing.T) {
	t.Run("cpu", func(t *testing.T) {
		prog, err := cpu.Assemble("wake", `
			movi r1, 0
			movi r2, 4096
			movi r5, 16
		loop:
			ld   r3, [r2]
			mul  r4, r3, r3
			st   [r2], r4
			addi r2, r2, 64
			addi r1, r1, 1
			blt  r1, r5, loop
			halt
		`)
		if err != nil {
			t.Fatal(err)
		}
		c := cpu.NewCore(cpu.DefaultConfig(0), prog, mem.NewMemory(), nil)
		cp := &completer{lat: 35}
		checkWakeContract(t, wakeProbe{
			wake: c.NextWake,
			sig:  func() string { return fmt.Sprint(c.PC, c.Halted(), c.Out.Len()) },
			tick: func(cy uint64) { c.Tick(cy) },
			post: func(cy uint64) { cp.drain(c.Out, cy) },
		}, 20000)
		if !c.Halted() {
			t.Fatal("program did not complete inside the contract window")
		}
	})

	t.Run("simt", func(t *testing.T) {
		env := &wakeEnv{m: mem.NewMemory()}
		for i := 0; i < 64; i++ {
			env.m.WriteF32(0x1000+uint64(i)*4, float32(i))
		}
		c := simt.NewCore(simt.DefaultCoreConfig(), nil)
		prog := shader.MustAssemble("wake", shader.KindCompute, `
			movs r0, %tid
			shl  r1, r0, 2
			iadd r2, r1, 0x1000
			ldg  r3, [r2]
			cvt.i2f r4, r0
			mad  r5, r3, 2.0, r4
			stg  [r2], r5
			exit
		`)
		var sp [simt.WarpSize]shader.Special
		for i := range sp {
			sp[i] = shader.Special{TID: uint32(i), NTID: simt.WarpSize}
		}
		for i := 0; i < 2; i++ {
			if _, err := c.Launch(prog, env, -1, simt.FullMask, sp, nil); err != nil {
				t.Fatal(err)
			}
		}
		cp := &completer{lat: 40}
		checkWakeContract(t, wakeProbe{
			wake: c.NextWake,
			sig:  func() string { return fmt.Sprint(c.Instructions(), c.Out.Len()) },
			tick: func(cy uint64) { c.Tick(cy) },
			post: func(cy uint64) { cp.drain(c.Out, cy) },
		}, 20000)
		if c.Instructions() < 16 {
			t.Fatalf("only %d instructions issued; warps did not run", c.Instructions())
		}
	})

	t.Run("cache", func(t *testing.T) {
		ready := 0
		cc := cache.New(cache.Config{
			Name: "l1", SizeBytes: 2048, LineBytes: 64, Ways: 2,
			HitLatency: 2, MSHRs: 4, MSHRTargets: 4,
			WriteBack: true, Allocate: true, Client: mem.ClientGPU,
		}, nil)
		cc.OnReady = func(any, uint64) { ready++ }
		cp := &completer{lat: 30}
		tok := 0
		checkWakeContract(t, wakeProbe{
			wake: cc.NextWake,
			sig:  func() string { return fmt.Sprint(ready, cc.Out.Len(), cc.PendingMisses()) },
			tick: cc.Tick,
			post: func(cy uint64) {
				if cy < 1400 && cy%7 == 0 {
					kind := mem.Read
					if cy%21 == 0 {
						kind = mem.Write
					}
					addr := uint64((cy*13)%96) * 64
					cc.Access(cy, addr, kind, &tok)
				}
				cp.drain(cc.Out, cy)
			},
		}, 3000)
		if ready == 0 {
			t.Fatal("no fills returned; cache never got busy")
		}
	})

	t.Run("dram", func(t *testing.T) {
		ctrl := dram.NewController(dram.Config{
			Name: "dram", Geometry: dram.LPDDR3Geometry(2), Timing: dram.LPDDR3Timing(1333),
		}, nil)
		retired := 0
		ctrl.SetOnRetire(func(*mem.Request, uint64) { retired++ })
		checkWakeContract(t, wakeProbe{
			wake: ctrl.NextWake,
			sig:  func() string { return fmt.Sprint(ctrl.QueuedRequests(), ctrl.TotalBytes(), retired) },
			tick: ctrl.Tick,
			post: func(cy uint64) {
				// Two bursts separated by an idle gap, spread across
				// both channels and several rows.
				if cy < 8 || (cy >= 600 && cy < 604) {
					ctrl.Push(&mem.Request{Addr: cy * 4096, Size: 64, Client: mem.ClientGPU})
					ctrl.Push(&mem.Request{Addr: cy*4096 + 64, Size: 64, Kind: mem.Write, Client: mem.ClientCPU})
				}
			},
		}, 2000)
		if retired == 0 || !ctrl.Drained() {
			t.Fatalf("retired=%d drained=%v; traffic did not complete", retired, ctrl.Drained())
		}
	})

	t.Run("xbar", func(t *testing.T) {
		delivered, attempts := 0, 0
		x := interconnect.New(interconnect.Config{
			Name: "x", Ports: 2, Latency: 3, Width: 1, Depth: 8,
		}, func(r *mem.Request) bool {
			attempts++
			if attempts%4 == 0 {
				return false // periodic backpressure: arrival stays in flight
			}
			delivered++
			return true
		}, nil)
		checkWakeContract(t, wakeProbe{
			wake: x.NextWake,
			sig:  func() string { return fmt.Sprint(delivered, attempts, x.Busy()) },
			tick: x.Tick,
			post: func(cy uint64) {
				if cy < 6 || cy == 40 || cy == 41 {
					x.Push(int(cy%2), &mem.Request{Addr: 64 * cy})
				}
			},
		}, 200)
		if delivered < 8 || x.Busy() {
			t.Fatalf("delivered=%d busy=%v; crossbar did not drain", delivered, x.Busy())
		}
	})

	t.Run("display", func(t *testing.T) {
		d := soc.NewDisplay(3000, nil)
		d.SetFrontBuffer(gfx.Surface{Base: 0x40000, Width: 64, Height: 8})
		cp := &completer{lat: 50}
		checkWakeContract(t, wakeProbe{
			wake: d.NextWake,
			sig: func() string {
				return fmt.Sprint(d.Served(), d.FramesShown(), d.FramesDropped(), d.Out.Len(), d.FrameStart())
			},
			tick: d.Tick,
			post: func(cy uint64) { cp.drain(d.Out, cy) },
		}, 10000)
		if d.FramesShown() < 2 {
			t.Fatalf("FramesShown = %d; scan-out never got going", d.FramesShown())
		}
	})

	t.Run("gpu", func(t *testing.T) {
		m := mem.NewMemory()
		for i := 0; i < 256; i++ {
			m.WriteF32(0x1000+uint64(i)*4, float32(i))
		}
		g := gpu.New(gpu.CaseStudyIConfig(), m, nil)
		prog := shader.MustAssemble("wake", shader.KindCompute, `
			movs r0, %tid
			shl  r1, r0, 2
			iadd r2, r1, 0x1000
			ldg  r3, [r2]
			mad  r4, r3, 2.0, r3
			stg  [r2], r4
			exit
		`)
		done := 0
		if err := g.LaunchKernel(gpu.Kernel{Prog: prog, Blocks: 4, ThreadsPerBlock: 64},
			func(uint64) { done++ }); err != nil {
			t.Fatal(err)
		}
		cp := &completer{lat: 40}
		checkWakeContract(t, wakeProbe{
			wake: g.NextWake,
			sig:  func() string { return fmt.Sprint(g.Progress(), g.Out.Len(), done) },
			tick: g.Tick,
			post: func(cy uint64) { cp.drain(g.Out, cy) },
		}, 30000)
		if done != 1 {
			t.Fatalf("kernel done = %d; GPU never finished", done)
		}
	})

	t.Run("dash", func(t *testing.T) {
		d := sched.NewDASH(sched.DASHConfig{
			SchedulingUnit: 40, SwitchingUnit: 25, QuantumLength: 100,
			ClusterFactor: 0.15, EmergentThreshold: 0.8, GPUEmergent: 0.9,
			NumCPUs: 2, Seed: 1,
		})
		d.RegisterIP(mem.ClientDisplay, 0, 500)
		d.StartFrame(mem.ClientDisplay, 0, 0)
		flips := 0
		last := false
		checkWakeContract(t, wakeProbe{
			wake: d.NextWake,
			sig: func() string {
				u := d.Urgent(mem.ClientDisplay, 0)
				if u != last {
					last = u
					flips++
				}
				return fmt.Sprint(d.P(), u, d.Intensive(0), d.Intensive(1))
			},
			tick: d.Tick,
			post: func(cy uint64) {
				switch cy {
				case 250:
					d.ReportProgress(mem.ClientDisplay, 0, 0.2)
				case 500:
					d.StartFrame(mem.ClientDisplay, 0, cy)
					d.ReportProgress(mem.ClientDisplay, 0, 1)
				case 900:
					d.ReportProgress(mem.ClientDisplay, 0, 0.1)
				}
			},
		}, 2000)
		if flips == 0 {
			t.Fatal("urgency never changed; scheduler state was static")
		}
	})
}
