package exp

import (
	"fmt"

	"emerald/internal/soc"
	"emerald/internal/stats"
)

// This file holds the pure aggregation half of the experiment
// harnesses: given raw per-cell results, compute the paper's figure
// tables. The Fig* runners in exp.go/dfsl.go and the sweep service's
// aggregator (cmd/sweep) share these, so a figure printed from a
// cache-backed sweep is byte-identical to one printed by the
// sequential CLIs.

// CS1Results indexes Case Study I cell results by [model][config].
type CS1Results = map[int]map[MemConfig]soc.Results

// ParseMemConfig parses a Table 6 configuration name (BAS, DCB, DTB,
// HMC) as produced by MemConfig.String.
func ParseMemConfig(s string) (MemConfig, error) {
	for _, c := range AllMemConfigs() {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("exp: unknown memory config %q (want BAS|DCB|DTB|HMC)", s)
}

// AllDFSLPolicies lists Figure 19's policies.
func AllDFSLPolicies() []DFSLPolicy { return []DFSLPolicy{MLB, MLC, SOPT, DFSL} }

// ParseDFSLPolicy parses a Figure 19 policy name (MLB, MLC, SOPT,
// DFSL) as produced by DFSLPolicy.String.
func ParseDFSLPolicy(s string) (DFSLPolicy, error) {
	for _, p := range AllDFSLPolicies() {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("exp: unknown DFSL policy %q (want MLB|MLC|SOPT|DFSL)", s)
}

// Fig09Table computes Figure 9 (normalized GPU execution time under
// regular load) from a Case Study I result set.
func Fig09Table(res CS1Results) *stats.Table {
	t := stats.NewTable("Figure 9: normalized GPU execution time (regular load)",
		"model", "BAS", "DCB", "DTB", "HMC")
	for _, m := range sortedModels(res) {
		bas := res[m][BAS].MeanGPUCycles
		norm := func(c MemConfig) float64 {
			if bas == 0 {
				return 0
			}
			return res[m][c].MeanGPUCycles / bas
		}
		t.AddRow(modelName(m), norm(BAS), norm(DCB), norm(DTB), norm(HMC))
	}
	return t
}

// Fig11Table computes Figure 11 (HMC row locality normalized to BAS)
// from a Case Study I result set.
func Fig11Table(res CS1Results) *stats.Table {
	t := stats.NewTable("Figure 11: HMC row locality normalized to BAS",
		"model", "rowbuffer_hit_rate", "bytes_per_activation")
	for _, m := range sortedModels(res) {
		bas, hmc := res[m][BAS], res[m][HMC]
		hr, ba := 0.0, 0.0
		if bas.RowHitRate > 0 {
			hr = hmc.RowHitRate / bas.RowHitRate
		}
		if bas.BytesPerAct > 0 {
			ba = hmc.BytesPerAct / bas.BytesPerAct
		}
		t.AddRow(modelName(m), hr, ba)
	}
	return t
}

// Fig12Table computes Figure 12 (normalized execution time under high
// load) from a Case Study I result set measured at the high-load DRAM
// rate.
func Fig12Table(res CS1Results) *stats.Table {
	t := stats.NewTable("Figure 12: normalized execution time (high load)",
		"model", "config", "total_frame_time", "gpu_render_time")
	for _, m := range sortedModels(res) {
		bas := res[m][BAS]
		for _, c := range AllMemConfigs() {
			r := res[m][c]
			tf, tg := 0.0, 0.0
			if bas.MeanFrameCycles > 0 {
				tf = r.MeanFrameCycles / bas.MeanFrameCycles
			}
			if bas.MeanGPUCycles > 0 {
				tg = r.MeanGPUCycles / bas.MeanGPUCycles
			}
			t.AddRow(modelName(m), c.String(), tf, tg)
		}
	}
	return t
}

// Fig13Table computes Figure 13 (display requests serviced relative to
// BAS) from a Case Study I result set measured at the high-load DRAM
// rate.
func Fig13Table(res CS1Results) *stats.Table {
	t := stats.NewTable("Figure 13: display requests serviced relative to BAS",
		"model", "BAS", "DCB", "DTB", "HMC")
	for _, m := range sortedModels(res) {
		bas := float64(res[m][BAS].DisplayServed)
		norm := func(c MemConfig) float64 {
			if bas == 0 {
				return 0
			}
			return float64(res[m][c].DisplayServed) / bas
		}
		t.AddRow(modelName(m), norm(BAS), norm(DCB), norm(DTB), norm(HMC))
	}
	return t
}

// Fig17Table computes Figure 17 (frame time vs WT size, normalized to
// WT=1) from per-workload WT sweeps. order fixes the row order (the
// workload ids, as passed on the command line or expanded by the sweep
// client); maxWT is the sweep length.
func Fig17Table(order []int, sweeps map[int][]uint64, maxWT int) *stats.Table {
	headers := []string{"workload"}
	for wt := 1; wt <= maxWT; wt++ {
		headers = append(headers, fmt.Sprintf("WT%d", wt))
	}
	t := stats.NewTable("Figure 17: frame time vs WT size (normalized to WT=1)", headers...)
	for _, w := range order {
		times, ok := sweeps[w]
		if !ok {
			continue
		}
		row := []any{workloadName(w)}
		for _, c := range times {
			row = append(row, float64(c)/float64(times[0]))
		}
		t.AddRow(row...)
	}
	return t
}

// SOPTFromSweeps picks the static-optimal WT: the size with the best
// average normalized frame time across every workload's sweep (the
// first pass of Figure 19).
func SOPTFromSweeps(sweeps map[int][]uint64, maxWT int) int {
	sopt := 1
	best := 0.0
	for wt := 1; wt <= maxWT; wt++ {
		sum := 0.0
		for _, times := range sweeps {
			sum += float64(times[wt-1]) / float64(times[0])
		}
		if sopt == 1 && wt == 1 || sum < best {
			best = sum
			sopt = wt
		}
	}
	return sopt
}

// Fig19Table computes Figure 19 (frame speedup vs MLB) from
// per-workload, per-policy average frame cycles. order fixes the row
// order; sopt, evalFrames and runFrames parameterize the title the way
// the dfsl CLI prints it.
func Fig19Table(order []int, avg map[int]map[DFSLPolicy]float64, sopt, evalFrames, runFrames int) *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("Figure 19: frame speedup vs MLB (SOPT=WT%d, eval %d + run %d frames)",
			sopt, evalFrames, runFrames),
		"workload", "MLB", "MLC", "SOPT", "DFSL")
	for _, w := range order {
		byPolicy, ok := avg[w]
		if !ok {
			continue
		}
		mlb := byPolicy[MLB]
		row := []any{workloadName(w)}
		for _, p := range AllDFSLPolicies() {
			v := 0.0
			if byPolicy[p] > 0 {
				v = mlb / byPolicy[p]
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t
}
