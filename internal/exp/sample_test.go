package exp

import (
	"bytes"
	"testing"

	"emerald/internal/geom"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/mem"
	"emerald/internal/par"
	"emerald/internal/sample"
	"emerald/internal/trace"
)

// sampleTestOptions scales Case Study II down to test size.
func sampleTestOptions() Options {
	opt := Smoke()
	opt.CS2Width, opt.CS2Height = 48, 48
	return opt
}

// TestFunctionalMatchesDetailed is the exactness gate of the sampled
// pipeline: the functional executor must leave memory bit-identical to
// the detailed pipeline — same page set, same bytes — for an opaque
// early-Z workload (W3) and a translucent blending one (W5). Equality
// is checked through the canonical checkpoint digest, which covers
// every materialized page in sorted order.
func TestFunctionalMatchesDetailed(t *testing.T) {
	opt := sampleTestOptions()
	for _, w := range []int{geom.W3Cube, geom.W5SuzanneT} {
		tr, err := RecordWorkloadTrace(w, 2, opt)
		if err != nil {
			t.Fatal(err)
		}

		// Functional leg.
		fm := mem.NewMemory()
		fctx := gl.NewContext(fm, sample.DefaultHeapBase, sample.DefaultHeapSize)
		fctx.Submit = func(call *gpu.DrawCall) error {
			return gpu.ExecuteDrawFunc(fm, call, nil)
		}
		if err := trace.Replay(tr, fctx, trace.ReplayAll()); err != nil {
			t.Fatal(err)
		}

		// Detailed leg.
		rs := newReplaySystem(opt, nil)
		dopt := trace.ReplayAll()
		if err := trace.Replay(tr, rs.Ctx, dopt); err != nil {
			t.Fatal(err)
		}

		fd, err := trace.NewCheckpoint(tr, fm, 0, 2).Digest()
		if err != nil {
			t.Fatal(err)
		}
		dd, err := trace.NewCheckpoint(tr, rs.S.Mem(), 0, 2).Digest()
		if err != nil {
			t.Fatal(err)
		}
		if fd != dd {
			t.Errorf("W%d: functional memory digest %s != detailed %s (pages %d vs %d)",
				w, fd, dd, fm.PageCount(), rs.S.Mem().PageCount())
		}
	}
}

// regionState runs one region leg and returns its end-state digest and
// final framebuffer.
func regionState(t *testing.T, tr *trace.Trace, cp *trace.Checkpoint, start, span int,
	pool *par.Pool, noSkip bool) (string, []byte) {
	t.Helper()
	opt := sampleTestOptions()
	opt.Pool = pool
	opt.NoSkip = noSkip
	rs := newReplaySystem(opt, nil)
	if _, err := rs.regionRun(tr, cp, start, span).Run(); err != nil {
		t.Fatal(err)
	}
	dg, err := rs.digest()
	if err != nil {
		t.Fatal(err)
	}
	cs := rs.Ctx.ColorSurface()
	fb := make([]byte, cs.Width*cs.Height*4)
	rs.S.Mem().Read(cs.Base, fb)
	return dg, fb
}

// TestCheckpointResumeFidelity is the resume digest gate: a detailed
// region resumed from a checkpoint must be bit-identical — registry
// JSON, framebuffer, final cycle — whether the checkpoint came from
// memory or from a Save→Load file round trip, at workers 1 and 4,
// with idle skipping on and off; and its final framebuffer must match
// the straight-through detailed replay of the whole scenario.
func TestCheckpointResumeFidelity(t *testing.T) {
	const frames, start = 4, 2
	opt := sampleTestOptions()
	tr, err := RecordWorkloadTrace(geom.W3Cube, frames, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The region executor anchors its checkpoint one warm-up frame
	// before the first measured frame.
	w0 := warmupStart(start)
	pass, err := sample.Pass(tr, sample.PassConfig{CheckpointAt: []int{0, w0}})
	if err != nil {
		t.Fatal(err)
	}
	cp := pass.Checkpoints[w0]

	// File round trip: Save → bytes → Load.
	raw, err := cp.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	span := frames - start
	ref, refFB := regionState(t, tr, cp, start, span, nil, false)

	pool := par.NewPool(4)
	defer pool.Close()
	legs := []struct {
		name   string
		cp     *trace.Checkpoint
		pool   *par.Pool
		noSkip bool
	}{
		{"file round trip", loaded, nil, false},
		{"workers=4", cp, pool, false},
		{"no-skip", cp, nil, true},
		{"workers=4 no-skip", loaded, pool, true},
	}
	for _, leg := range legs {
		got, _ := regionState(t, tr, leg.cp, start, span, leg.pool, leg.noSkip)
		if got != ref {
			t.Errorf("%s: resume digest %s != reference %s", leg.name, got, ref)
		}
	}

	// Functional-equivalence gate: the resumed run's final framebuffer
	// must match the straight-through detailed replay (resuming from
	// frame 0's checkpoint replays every frame in detail).
	_, straightFB := regionState(t, tr, pass.Checkpoints[0], 0, frames, nil, false)
	if !bytes.Equal(refFB, straightFB) {
		t.Error("resumed run's final framebuffer differs from the straight-through detailed replay")
	}
}

// TestRunRegionJobDeterministic: the sweep executor's unit of work
// must be a pure function of its spec — identical digests and cycles
// across repeated runs and across worker counts.
func TestRunRegionJobDeterministic(t *testing.T) {
	opt := sampleTestOptions()
	a, err := RunRegionJob(geom.W3Cube, 3, 1, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.FrameCycles) != 2 || a.TotalCycles() == 0 {
		t.Fatalf("region job measured %v cycles", a.FrameCycles)
	}
	pool := par.NewPool(4)
	defer pool.Close()
	popt := opt
	popt.Pool = pool
	b, err := RunRegionJob(geom.W3Cube, 3, 1, 2, popt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("workers=1 digest %s != workers=4 digest %s", a.Digest, b.Digest)
	}
	for i := range a.FrameCycles {
		if a.FrameCycles[i] != b.FrameCycles[i] {
			t.Errorf("frame %d cycles %d != %d across worker counts", i, a.FrameCycles[i], b.FrameCycles[i])
		}
	}
}

// TestRunSampledPipeline runs the whole in-process pipeline on a short
// scenario and sanity-checks the reconstruction against the true full
// detailed run.
func TestRunSampledPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-vs-sampled comparison is several detailed frames")
	}
	const frames = 6
	opt := sampleTestOptions()
	res, err := RunSampled(geom.W3Cube, frames, 2, 1, 2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 2 || len(res.Sigs) != frames {
		t.Fatalf("pipeline selected %d regions over %d signatures", len(res.Regions), len(res.Sigs))
	}
	if res.Estimate.TotalCycles == 0 {
		t.Fatal("reconstruction estimated zero cycles")
	}
	// The scenario is homogeneous (same mesh, slowly orbiting camera),
	// so the sampled estimate should land near the true total.
	full, err := RunRegionJob(geom.W3Cube, frames, 0, frames, opt)
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(full.TotalCycles())
	est := float64(res.Estimate.TotalCycles)
	if ratio := est / truth; ratio < 0.5 || ratio > 2 {
		t.Errorf("sampled estimate %v vs true %v (ratio %.2f) outside tolerance", est, truth, ratio)
	}
}
