package exp

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"time"

	"emerald/internal/geom"
	"emerald/internal/stats"
	"emerald/internal/telemetry"
)

// telemetryDigest runs one Case Study I cell with or without a probe
// attached and hashes the observable end state, mirroring
// socStateDigest. The two digests must match: telemetry reads
// counters, it never perturbs the simulation.
func telemetryDigest(t *testing.T, probe *telemetry.Probe) string {
	t.Helper()
	opt := Quick()
	if testing.Short() {
		opt.Frames, opt.WarmupFrames = 1, 0
	}
	opt.Probe = probe
	reg := stats.NewRegistry()
	s, err := buildSoC(geom.M2Cube, BAS, opt.RegularMbps, opt, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(opt.BudgetCycles); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fb := make([]byte, 3*opt.Width*opt.Height*4)
	s.Mem.Read(0x8000_0000, fb)
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(fb)
	fmt.Fprintf(h, "cycle=%d res=%+v", s.Cycle(), s.Results("digest"))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// Attaching a probe must not change a single bit of observable state —
// the determinism contract that lets the sweep service arm telemetry
// on every job.
func TestTelemetryDigestInvariance(t *testing.T) {
	bare := telemetryDigest(t, nil)
	probe := telemetry.NewProbe()
	probed := telemetryDigest(t, probe)
	if bare != probed {
		t.Errorf("probe changed the state digest: bare %s != probed %s", bare, probed)
	}
	pr, ok := probe.Progress()
	if !ok {
		t.Fatal("probe never published during a full run")
	}
	// The run ends the instant the last frame retires, between stride
	// polls — so the final snapshot may predate that retirement; only
	// cycle and work are guaranteed non-zero.
	if pr.Cycle == 0 || pr.WorkSig == 0 {
		t.Errorf("final progress looks empty: %+v", pr)
	}
}

// A live healthy SoC run must serve an on-demand diagnostic bundle —
// the same snapshot a watchdog abort produces — without stopping.
func TestLiveDiagOnHealthyRun(t *testing.T) {
	opt := Smoke()
	probe := telemetry.NewProbe()
	opt.Probe = probe
	s, err := buildSoC(geom.M2Cube, BAS, opt.RegularMbps, opt, stats.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	runErr := make(chan error, 1)
	go func() { runErr <- s.RunCtx(context.Background(), opt.BudgetCycles) }()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	d, err := probe.RequestDiag(ctx)
	if err != nil {
		t.Fatalf("RequestDiag on a live run: %v", err)
	}
	if len(d.Sections) == 0 {
		t.Fatal("live diag bundle has no sections")
	}
	var titles []string
	for _, sec := range d.Sections {
		titles = append(titles, sec.Title)
	}
	if d.Window != 0 {
		t.Errorf("on-demand diag window = %d, want 0 (not a stall)", d.Window)
	}
	found := map[string]bool{}
	for _, title := range titles {
		found[title] = true
	}
	for _, want := range []string{"soc", "gpu front end", "dram"} {
		if !found[want] {
			t.Errorf("diag sections %v missing %q", titles, want)
		}
	}

	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	probe.Finish()
	if _, err := probe.RequestDiag(context.Background()); !errors.Is(err, telemetry.ErrFinished) {
		t.Fatalf("post-run RequestDiag err = %v, want ErrFinished", err)
	}
}

// The standalone-GPU harness path (dfsl): RunWTSweep with both a stats
// registry and a probe armed — the -stats-json/-progress combination —
// must fill both without disturbing the sweep.
func TestStandaloneProbeAndStats(t *testing.T) {
	opt := Smoke()
	opt.MaxWT = 2
	opt.Stats = stats.NewRegistry()
	opt.Probe = telemetry.NewProbe()
	times, err := RunWTSweep(geom.W3Cube, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != opt.MaxWT {
		t.Fatalf("got %d WT cells, want %d", len(times), opt.MaxWT)
	}
	for wt, c := range times {
		if c == 0 {
			t.Errorf("WT=%d reported zero cycles", wt+1)
		}
	}
	pr, ok := opt.Probe.Progress()
	if !ok {
		t.Fatal("probe never published during the WT sweep")
	}
	if pr.Cycle == 0 || pr.Components.GPUWork == 0 {
		t.Errorf("standalone progress looks empty: %+v", pr)
	}
	if pr.FramesTarget != 0 {
		t.Errorf("until-idle run advertises a frame target: %d", pr.FramesTarget)
	}
	var buf bytes.Buffer
	if err := opt.Stats.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() <= 2 {
		t.Fatal("stats registry empty after an instrumented sweep")
	}
}
