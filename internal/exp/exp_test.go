package exp

import (
	"strings"
	"testing"

	"emerald/internal/geom"
	"emerald/internal/stats"
)

// tinyOptions keeps unit tests fast; the real scaling lives in Quick().
func tinyOptions() Options {
	o := Quick()
	o.Width, o.Height = 80, 60
	o.Frames = 1
	o.WarmupFrames = 1
	o.DisplayPeriod = 50_000
	o.AppPeriod = 100_000
	o.CS2Width, o.CS2Height = 96, 72
	o.MaxWT = 3
	o.DFSLRunFrames = 2
	return o
}

func TestRunCaseStudyICell(t *testing.T) {
	r, err := RunCaseStudyI(geom.M2Cube, BAS, 1333, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanGPUCycles <= 0 || r.DisplayServed == 0 {
		t.Fatalf("degenerate results: %+v", r)
	}
}

func TestFig09ShapeSmall(t *testing.T) {
	tab, err := Fig09(tinyOptions(), []int{geom.M2Cube})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	if tab.Cell(0, 1) != "1.000" {
		t.Fatalf("BAS must normalize to 1.0, got %s", tab.Cell(0, 1))
	}
	out := tab.String()
	for _, h := range []string{"BAS", "DCB", "DTB", "HMC"} {
		if !strings.Contains(out, h) {
			t.Fatalf("missing column %s:\n%s", h, out)
		}
	}
}

func TestFig10TimelineHasAllSources(t *testing.T) {
	opt := tinyOptions()
	tl, err := Fig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"cpu", "gpu", "display"} {
		if tl.TotalBytes(src) == 0 {
			t.Fatalf("timeline missing %s traffic", src)
		}
	}
	if tl.Buckets() < 4 {
		t.Fatalf("timeline too coarse: %d buckets", tl.Buckets())
	}
}

func TestFig17SweepRuns(t *testing.T) {
	opt := tinyOptions()
	tab, err := Fig17(opt, []int{geom.W3Cube})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	if tab.Cell(0, 1) != "1.000" {
		t.Fatalf("WT1 must normalize to 1.0, got %q", tab.Cell(0, 1))
	}
}

func TestFig19PicksPoliciesAndRuns(t *testing.T) {
	opt := tinyOptions()
	tab, raw, err := Fig19(opt, []int{geom.W3Cube})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	for _, p := range []DFSLPolicy{MLB, MLC, SOPT, DFSL} {
		if raw[geom.W3Cube][p] <= 0 {
			t.Fatalf("policy %s produced no time", p)
		}
	}
	if MLB.String() != "MLB" || DFSL.String() != "DFSL" {
		t.Fatal("policy names wrong")
	}
}

func TestMemConfigNames(t *testing.T) {
	if BAS.String() != "BAS" || HMC.String() != "HMC" {
		t.Fatal("config names wrong")
	}
	if len(AllMemConfigs()) != 4 {
		t.Fatal("want 4 configurations (Table 6)")
	}
}

func TestFig12And13HighLoadShapes(t *testing.T) {
	opt := tinyOptions()
	opt.Frames = 2 // frame-to-frame deltas need at least two measured frames
	t12, err := Fig12(opt, []int{geom.M4Triangles})
	if err != nil {
		t.Fatal(err)
	}
	if t12.Rows() != 4 { // one row per config for the single model
		t.Fatalf("fig12 rows = %d", t12.Rows())
	}
	if t12.Cell(0, 2) != "1.000" {
		t.Fatalf("BAS frame time must normalize to 1, got %q", t12.Cell(0, 2))
	}
	t13, err := Fig13(opt, []int{geom.M4Triangles})
	if err != nil {
		t.Fatal(err)
	}
	if t13.Rows() != 1 || t13.Cell(0, 1) != "1.000" {
		t.Fatalf("fig13 shape wrong: rows=%d bas=%q", t13.Rows(), t13.Cell(0, 1))
	}
}

func TestFig14TwoTimelines(t *testing.T) {
	opt := tinyOptions()
	bas, dtb, err := Fig14(opt)
	if err != nil {
		t.Fatal(err)
	}
	for name, tl := range map[string]*stats.Timeline{"bas": bas, "dtb": dtb} {
		if tl.TotalBytes("cpu") == 0 || tl.TotalBytes("gpu") == 0 {
			t.Fatalf("%s timeline missing traffic", name)
		}
	}
}

func TestFig18Table(t *testing.T) {
	opt := tinyOptions()
	tab, err := Fig18(opt)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != opt.MaxWT {
		t.Fatalf("fig18 rows = %d, want %d", tab.Rows(), opt.MaxWT)
	}
	if tab.Cell(0, 1) != "1.000" {
		t.Fatalf("WT1 exec time must normalize to 1, got %q", tab.Cell(0, 1))
	}
}
