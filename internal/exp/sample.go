package exp

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sync"

	"emerald/internal/dram"
	"emerald/internal/geom"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/guard"
	"emerald/internal/mathx"
	"emerald/internal/mem"
	"emerald/internal/sample"
	"emerald/internal/shader"
	"emerald/internal/stats"
	"emerald/internal/trace"
)

// This file is the sampled-simulation harness for Case Study II
// scenarios: record a workload's draw stream once, run the functional
// pass for signatures and checkpoints, select representative regions,
// and execute them in detail — in-process across goroutines
// (RunSampled) or as independent sweep jobs (RunRegionJob).

// RecordWorkloadTrace records one DFSL workload's API stream — the
// same per-frame sequence the detailed CS2 renderer issues — without
// simulating anything: draws are recorded before submission, so a
// no-op submit hook suffices. The recording is deterministic, which is
// what lets region sweep jobs re-record the trace in-job and stay pure
// functions of their canonical spec.
func RecordWorkloadTrace(workload, frames int, opt Options) (*trace.Trace, error) {
	scene, err := geom.DFSLWorkload(workload)
	if err != nil {
		return nil, err
	}
	if frames < 1 {
		return nil, fmt.Errorf("exp: record needs frames >= 1, got %d", frames)
	}
	m := mem.NewMemory()
	ctx := gl.NewContext(m, sample.DefaultHeapBase, sample.DefaultHeapSize)
	tr := &trace.Trace{}
	ctx.Recorder = tr
	ctx.Submit = func(*gpu.DrawCall) error { return nil }

	ctx.Viewport(opt.CS2Width, opt.CS2Height)
	mesh, err := ctx.UploadMesh(scene.Mesh)
	if err != nil {
		return nil, err
	}
	tex, err := ctx.UploadTexture(scene.Texture)
	if err != nil {
		return nil, err
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		return nil, err
	}
	fs := shader.FSTexturedEarlyZ
	if scene.Translucent {
		fs = shader.FSTexturedBlend
		ctx.Enable(gl.Blend)
		ctx.DepthMask(false)
		ctx.SetAlpha(0.6)
	}
	if err := ctx.UseProgram(shader.VSTransform, fs); err != nil {
		return nil, err
	}
	ctx.SetLight(mathx.V3(0.4, 0.5, 0.8).Normalize())
	aspect := float32(opt.CS2Width) / float32(opt.CS2Height)
	for f := 0; f < frames; f++ {
		ctx.Clear(0xFF101020, true)
		ctx.SetMVP(scene.MVP(f, aspect))
		if err := ctx.DrawMesh(mesh); err != nil {
			return nil, err
		}
		ctx.FrameEnd()
	}
	return tr, nil
}

// replaySystem is a detailed standalone system wired for trace replay:
// every submitted draw runs to completion, matching the straight-
// through CS2 renderer's submit-then-drain loop.
type replaySystem struct {
	S   *gpu.Standalone
	Ctx *gl.Context
	Reg *stats.Registry

	opt  Options
	mark uint64
}

func newReplaySystem(opt Options, reg *stats.Registry) *replaySystem {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s := gpu.NewStandalone(gpu.CaseStudyIIConfig(), dram.Config{
		Geometry: dram.LPDDR3Geometry(4),
		Timing:   dram.LPDDR3Timing(1600),
	}, reg)
	if opt.Trace != nil {
		s.AttachTracer(opt.Trace)
	}
	if opt.guardOn() {
		s.AttachGuard(guard.NewChecker())
	}
	s.SetWatchdog(opt.WatchdogCycles)
	s.SetParallel(opt.Pool)
	s.SetIdleSkip(!opt.NoSkip)
	s.SetEventWheel(!opt.NoWheel)
	s.SetProbe(opt.Probe)
	rs := &replaySystem{S: s, Reg: reg, opt: opt}
	ctx := gl.NewContext(s.Mem(), sample.DefaultHeapBase, sample.DefaultHeapSize)
	ctx.Submit = func(call *gpu.DrawCall) error {
		if err := s.GPU.SubmitDraw(call, nil); err != nil {
			return err
		}
		_, err := s.RunUntilIdleCtx(opt.Ctx, opt.BudgetCycles)
		return err
	}
	ctx.OnClearDepth = s.GPU.ClearHiZ
	rs.Ctx = ctx
	return rs
}

// RegionWarmupFrames is the fixed warm-up policy for region jobs: the
// checkpoint restores functional memory bit-exactly, but caches, Hi-Z
// and DRAM row buffers start cold, so each region replays this many
// preceding frames in detail unmeasured before measurement begins.
// Three frames because the measured cold-start transient on the CS2
// scenarios is ~3 frames long (frame cycles settle to within a few
// percent of steady state by the fourth frame); one warm-up frame
// leaves the measured frame ~3x steady state. A policy constant, not a
// spec field, so region job keys stay canonical.
const RegionWarmupFrames = 3

// checkpointStride is the grid granularity of checkpoint anchors:
// region warm-up starts snap down to a multiple of this, so the
// single-pass pipeline only snapshots every strideth frame boundary
// (a quarter of the snapshot cost) at the price of zero to stride-1
// extra warm-up frames per region — cheap, near-steady-state frames.
const checkpointStride = 4

// warmupStart returns the first detailed (warm-up) frame for a region
// starting at start — where its checkpoint must be anchored. The
// result is always on the checkpoint grid, and at least
// RegionWarmupFrames before start (clamped at frame 0).
func warmupStart(start int) int {
	w0 := start - RegionWarmupFrames
	if w0 < 0 {
		w0 = 0
	}
	return w0 - w0%checkpointStride
}

// regionRun builds the sample.RegionRun wiring for this system. The
// checkpoint must be anchored at warmupStart(start).
func (rs *replaySystem) regionRun(tr *trace.Trace, cp *trace.Checkpoint, start, span int) *sample.RegionRun {
	return &sample.RegionRun{
		Trace: tr, CP: cp, Start: start, Span: span,
		Warmup: start - warmupStart(start),
		Ctx:    rs.Ctx, Mem: rs.S.Mem(),
		OnRestore: func() {
			// The functional checkpoint carries no Hi-Z; drop any built
			// during the (draw-free) prefix and adopt the snapshot clock.
			rs.S.GPU.ClearHiZ()
			if err := rs.S.ResumeAt(cp.Cycle); err != nil {
				panic(fmt.Sprintf("exp: region restore on busy system: %v", err))
			}
			rs.mark = rs.S.Cycle()
		},
		Drain: func(frame int) (uint64, error) {
			// Draws already drained at submit; account the frame's cycles.
			c := rs.S.Cycle()
			d := c - rs.mark
			rs.mark = c
			return d, nil
		},
	}
}

// digest hashes the system's observable end state — registry JSON,
// framebuffer, final cycle — the same SHA-256 gate pattern as the
// workers/skip determinism tests.
func (rs *replaySystem) digest() (string, error) {
	var buf bytes.Buffer
	if err := rs.Reg.DumpJSON(&buf); err != nil {
		return "", err
	}
	cs := rs.Ctx.ColorSurface()
	fb := make([]byte, cs.Width*cs.Height*4)
	rs.S.Mem().Read(cs.Base, fb)
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(fb)
	fmt.Fprintf(h, "cycle=%d", rs.S.Cycle())
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// RegionResult is one detailed region measurement — a sweep job
// payload, so it must be a pure function of (workload, frames, start,
// span, scale).
type RegionResult struct {
	Workload    int      `json:"workload"`
	Frames      int      `json:"frames"`
	Start       int      `json:"start"`
	Span        int      `json:"span"`
	FrameCycles []uint64 `json:"frame_cycles"`
	// Digest is the SHA-256 of the end state (registry JSON +
	// framebuffer + cycle) — the resume-fidelity gate's handle.
	Digest string `json:"digest"`
}

// TotalCycles sums the region's per-frame cycles.
func (r *RegionResult) TotalCycles() uint64 {
	var sum uint64
	for _, c := range r.FrameCycles {
		sum += c
	}
	return sum
}

// RunRegionJob executes one detailed region from scratch: re-record
// the workload's trace, functional-pass up to the region start for its
// checkpoint, restore, and run the region frames in detail. Everything
// derives deterministically from the arguments, so the result is
// content-addressable by its spec.
func RunRegionJob(workload, frames, start, span int, opt Options) (*RegionResult, error) {
	tr, err := RecordWorkloadTrace(workload, frames, opt)
	if err != nil {
		return nil, err
	}
	w0 := warmupStart(start)
	pass, err := sample.Pass(tr, sample.PassConfig{CheckpointAt: []int{w0}, StopAfterLast: true})
	if err != nil {
		return nil, err
	}
	rs := newReplaySystem(opt, nil)
	cycles, err := rs.regionRun(tr, pass.Checkpoints[w0], start, span).Run()
	if err != nil {
		return nil, err
	}
	dg, err := rs.digest()
	if err != nil {
		return nil, err
	}
	return &RegionResult{
		Workload: workload, Frames: frames, Start: start, Span: span,
		FrameCycles: cycles, Digest: dg,
	}, nil
}

// SampledResult is the in-process sampled pipeline's outcome.
type SampledResult struct {
	Workload int                `json:"workload"`
	Frames   int                `json:"frames"`
	K        int                `json:"k"`
	Span     int                `json:"span"`
	Sigs     []sample.FrameInfo `json:"sigs"`
	Regions  []sample.Region    `json:"regions"`
	Results  []*RegionResult    `json:"results"`
	Estimate sample.Estimate    `json:"estimate"`
}

// RunSampled is the whole sampled-simulation pipeline in one process:
// record the scenario, functional-pass it for per-frame signatures,
// cluster the signatures into k regions, checkpoint the region starts,
// run each region in detail (up to parallel at once, each on its own
// system and registry), and reconstruct the whole-run estimate from
// the weighted region means.
func RunSampled(workload, frames, k, span, parallel int, opt Options) (*SampledResult, error) {
	tr, err := RecordWorkloadTrace(workload, frames, opt)
	if err != nil {
		return nil, err
	}
	// One functional pass serves both signatures and checkpoints: region
	// starts aren't known until after clustering, so checkpoint every
	// grid frame a warm-up start can snap to. A checkpoint is a copy of
	// the materialized pages (a few hundred KB at quick scales), which
	// is far cheaper than the second functional replay it replaces.
	var grid []int
	for f := 0; f < frames; f += checkpointStride {
		grid = append(grid, f)
	}
	pass, err := sample.Pass(tr, sample.PassConfig{CheckpointAt: grid})
	if err != nil {
		return nil, err
	}
	regions, err := sample.SelectRegions(pass.Frames, k)
	if err != nil {
		return nil, err
	}

	if parallel < 1 {
		parallel = 1
	}
	ropt := opt
	if parallel > 1 {
		// Region fan-out owns the process parallelism; the tick-engine
		// pool is not shareable across concurrently running systems.
		ropt.Pool = nil
	}
	results := make([]*RegionResult, len(regions))
	errs := make([]error, len(regions))
	sem := make(chan struct{}, parallel)
	var wg sync.WaitGroup
	for i, reg := range regions {
		wg.Add(1)
		go func(i int, reg sample.Region) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rs := newReplaySystem(ropt, nil)
			cycles, err := rs.regionRun(tr, pass.Checkpoints[warmupStart(reg.Frame)], reg.Frame, span).Run()
			if err != nil {
				errs[i] = fmt.Errorf("region at frame %d: %w", reg.Frame, err)
				return
			}
			dg, err := rs.digest()
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = &RegionResult{
				Workload: workload, Frames: frames, Start: reg.Frame, Span: span,
				FrameCycles: cycles, Digest: dg,
			}
		}(i, reg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cycles := make([][]uint64, len(results))
	for i, r := range results {
		cycles[i] = r.FrameCycles
	}
	est, err := sample.Reconstruct(frames, regions, cycles)
	if err != nil {
		return nil, err
	}
	return &SampledResult{
		Workload: workload, Frames: frames, K: k, Span: span,
		Sigs: pass.Frames, Regions: regions, Results: results, Estimate: est,
	}, nil
}
