// Package raster implements the fixed-function geometry and raster
// stages of the Emerald pipeline (paper Figure 3, stages D-J): primitive
// assembly, clipping & culling, primitive setup, coarse rasterization
// over screen tiles, fine rasterization into 4x4 raster tiles, and the
// Hierarchical-Z buffer.
package raster

import "emerald/internal/mathx"

// MaxVaryings is the number of vec4 attributes carried from vertex to
// fragment shading (position excluded).
const MaxVaryings = 4

// Vertex is a post-vertex-shading vertex: a clip-space position plus
// varyings.
type Vertex struct {
	Clip  mathx.Vec4
	Attrs [MaxVaryings][4]float32
}

// Primitive is an assembled triangle.
type Primitive struct {
	ID uint32 // draw-order id (PMRB ordering key)
	V  [3]Vertex
}

// Viewport describes the render target mapping.
type Viewport struct {
	Width, Height int
}

// PrimMode enumerates supported OpenGL primitive topologies.
type PrimMode uint8

// Primitive topologies.
const (
	Triangles PrimMode = iota
	TriangleStrip
	TriangleFan
)

// VertexOverlap returns how many vertices of warp-aligned batches must
// overlap between consecutive vertex warps for this topology, so
// primitive processing never needs to consult another warp's vertices
// (paper §3.3.3: "batches of, sometimes overlapping, warps").
func (m PrimMode) VertexOverlap() int {
	switch m {
	case TriangleStrip:
		return 2
	case TriangleFan:
		return 2 // fan also re-reads the hub vertex; handled by the batcher
	}
	return 0
}

// Assemble converts an index stream into triangle index triples
// according to the topology. Degenerate index counts are truncated.
func Assemble(mode PrimMode, indices []uint32) [][3]uint32 {
	var out [][3]uint32
	switch mode {
	case Triangles:
		for i := 0; i+2 < len(indices); i += 3 {
			out = append(out, [3]uint32{indices[i], indices[i+1], indices[i+2]})
		}
	case TriangleStrip:
		for i := 0; i+2 < len(indices); i++ {
			a, b, c := indices[i], indices[i+1], indices[i+2]
			if i%2 == 1 {
				a, b = b, a // preserve winding
			}
			out = append(out, [3]uint32{a, b, c})
		}
	case TriangleFan:
		for i := 1; i+1 < len(indices); i++ {
			out = append(out, [3]uint32{indices[0], indices[i], indices[i+1]})
		}
	}
	return out
}
