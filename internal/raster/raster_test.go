package raster

import (
	"math/rand"
	"testing"

	"emerald/internal/mathx"
)

// tri builds a simple clip-space triangle at w=1 (already NDC-like).
func tri(id uint32, pts [3][2]float32, z float32) Primitive {
	var p Primitive
	p.ID = id
	for i := 0; i < 3; i++ {
		p.V[i].Clip = mathx.V4(pts[i][0], pts[i][1], z, 1)
	}
	return p
}

var vp = Viewport{Width: 64, Height: 64}

func TestAssembleModes(t *testing.T) {
	idx := []uint32{0, 1, 2, 3, 4, 5}
	if got := Assemble(Triangles, idx); len(got) != 2 || got[1] != [3]uint32{3, 4, 5} {
		t.Fatalf("triangles = %v", got)
	}
	strip := Assemble(TriangleStrip, []uint32{0, 1, 2, 3})
	if len(strip) != 2 || strip[0] != [3]uint32{0, 1, 2} || strip[1] != [3]uint32{2, 1, 3} {
		t.Fatalf("strip = %v (winding must alternate)", strip)
	}
	fan := Assemble(TriangleFan, []uint32{9, 1, 2, 3})
	if len(fan) != 2 || fan[0] != [3]uint32{9, 1, 2} || fan[1] != [3]uint32{9, 2, 3} {
		t.Fatalf("fan = %v", fan)
	}
	if Assemble(Triangles, []uint32{0, 1}) != nil {
		t.Fatal("short index list must produce nothing")
	}
}

func TestClipCullAccepts(t *testing.T) {
	p := tri(1, [3][2]float32{{-0.5, -0.5}, {0.5, -0.5}, {0, 0.5}}, 0)
	out, res := ClipCull(p, true)
	if res != Accepted || len(out) != 1 {
		t.Fatalf("res=%v out=%d", res, len(out))
	}
}

func TestClipCullFrustumReject(t *testing.T) {
	p := tri(1, [3][2]float32{{2, 2}, {3, 2}, {2, 3}}, 0) // fully right of x=w
	if _, res := ClipCull(p, true); res != CulledFrustum {
		t.Fatalf("res=%v, want frustum cull", res)
	}
}

func TestClipCullBackface(t *testing.T) {
	// Clockwise winding (negative area).
	p := tri(1, [3][2]float32{{-0.5, -0.5}, {0, 0.5}, {0.5, -0.5}}, 0)
	if _, res := ClipCull(p, true); res != CulledBackface {
		t.Fatalf("res=%v, want backface cull", res)
	}
	out, res := ClipCull(p, false)
	if res == CulledBackface || len(out) != 1 {
		t.Fatal("culling disabled must keep backfaces")
	}
}

func TestNearPlaneClipProducesValidW(t *testing.T) {
	// One vertex behind the eye (w+z < 0).
	var p Primitive
	p.V[0].Clip = mathx.V4(0, 0.8, -2, 1) // behind near
	p.V[1].Clip = mathx.V4(-1, -0.5, 0.5, 1)
	p.V[2].Clip = mathx.V4(1, -0.5, 0.5, 1)
	p.V[0].Attrs[0] = [4]float32{1, 0, 0, 1}
	p.V[1].Attrs[0] = [4]float32{0, 1, 0, 1}
	p.V[2].Attrs[0] = [4]float32{0, 0, 1, 1}
	out, res := ClipCull(p, false)
	if res != Clipped {
		t.Fatalf("res=%v, want clipped", res)
	}
	if len(out) < 1 || len(out) > 2 {
		t.Fatalf("clip output = %d triangles", len(out))
	}
	for _, q := range out {
		for i := 0; i < 3; i++ {
			if q.V[i].Clip.W+q.V[i].Clip.Z < 0 {
				t.Fatal("clipped vertex still behind near plane")
			}
		}
	}
}

func TestSetupBBoxAndArea(t *testing.T) {
	p := tri(1, [3][2]float32{{-1, -1}, {1, -1}, {-1, 1}}, 0)
	st, ok := Setup(p, vp)
	if !ok {
		t.Fatal("setup rejected valid triangle")
	}
	if st.X0 != 0 || st.Y0 != 0 || st.X1 != 64 || st.Y1 != 64 {
		t.Fatalf("bbox = (%d,%d)-(%d,%d)", st.X0, st.Y0, st.X1, st.Y1)
	}
	if st.Area == 0 {
		t.Fatal("area zero")
	}
}

func TestSetupRejectsDegenerate(t *testing.T) {
	p := tri(1, [3][2]float32{{0, 0}, {0, 0}, {0, 0}}, 0)
	if _, ok := Setup(p, vp); ok {
		t.Fatal("degenerate triangle accepted")
	}
}

// Property: fine-raster coverage agrees with a reference point-in-triangle
// test for random triangles.
func TestCoverageMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		pts := [3][2]float32{}
		for i := range pts {
			pts[i] = [2]float32{rng.Float32()*2 - 1, rng.Float32()*2 - 1}
		}
		p := tri(uint32(iter), pts, 0)
		st, ok := Setup(p, vp)
		if !ok {
			continue
		}
		covered := map[[2]int]bool{}
		Rasterize(st, vp, func(rt *RasterTile) {
			for _, f := range rt.Frags {
				covered[[2]int{f.X, f.Y}] = true
			}
		})
		// Reference: direct barycentric test over the viewport.
		for py := 0; py < vp.Height; py++ {
			for px := 0; px < vp.Width; px++ {
				_, _, _, inside := st.Bary(px, py)
				if inside != covered[[2]int{px, py}] {
					t.Fatalf("iter %d: pixel (%d,%d) raster=%v reference=%v",
						iter, px, py, covered[[2]int{px, py}], inside)
				}
			}
		}
	}
}

func TestFragmentsCarryInterpolatedDepth(t *testing.T) {
	// Depth gradient from z=-0.5 (ndc) at left to 0.5 at right.
	var p Primitive
	p.V[0].Clip = mathx.V4(-1, -1, -0.5, 1)
	p.V[1].Clip = mathx.V4(1, -1, 0.5, 1)
	p.V[2].Clip = mathx.V4(-1, 1, -0.5, 1)
	st, ok := Setup(p, vp)
	if !ok {
		t.Fatal("setup failed")
	}
	// Probe two pixels on the bottom row (ndc y=-1 maps to the bottom in
	// the y-down viewport) via the interpolators directly.
	l0, l1, l2, inside := st.Bary(1, 62)
	if !inside {
		t.Fatal("left probe outside")
	}
	zLeft := st.DepthAt(l0, l1, l2)
	l0, l1, l2, inside = st.Bary(60, 62)
	if !inside {
		t.Fatal("right probe outside")
	}
	zRight := st.DepthAt(l0, l1, l2)
	if zLeft >= zRight {
		t.Fatalf("depth gradient wrong: left %v right %v", zLeft, zRight)
	}
}

func TestPerspectiveCorrectInterpolation(t *testing.T) {
	// Two vertices at w=1, one at w=4; attribute 0..1 gradient. With
	// perspective correction the midpoint value is NOT the linear 0.5.
	var p Primitive
	p.V[0].Clip = mathx.V4(-1, -1, 0, 1)
	p.V[1].Clip = mathx.V4(4, -4, 0, 4) // ndc (1,-1)
	p.V[2].Clip = mathx.V4(-1, 1, 0, 1)
	p.V[0].Attrs[0] = [4]float32{0, 0, 0, 0}
	p.V[1].Attrs[0] = [4]float32{1, 1, 1, 1}
	p.V[2].Attrs[0] = [4]float32{0, 0, 0, 0}
	st, ok := Setup(p, vp)
	if !ok {
		t.Fatal("setup failed")
	}
	l0, l1, l2, inside := st.Bary(16, 40)
	if !inside {
		t.Fatal("probe point outside")
	}
	v := st.AttrAt(0, l0, l1, l2)
	if v[0] <= 0 || v[0] >= 1 {
		t.Fatalf("interpolated = %v, want in (0,1)", v[0])
	}
	// Perspective-correct: value biased toward the w=1 vertices (< linear).
	linear := l1 * 1.0
	if v[0] >= linear {
		t.Fatalf("perspective correction missing: %v >= linear %v", v[0], linear)
	}
}

func TestCoarseRasterVisitsBBoxTiles(t *testing.T) {
	p := tri(1, [3][2]float32{{-1, -1}, {1, -1}, {-1, 1}}, 0)
	st, _ := Setup(p, vp)
	n := 0
	CoarseRaster(st, 16, func(tx, ty int) {
		if tx%16 != 0 || ty%16 != 0 {
			t.Fatalf("unaligned tile (%d,%d)", tx, ty)
		}
		n++
	})
	if n != 16 { // 64/16 = 4 tiles each way
		t.Fatalf("visited %d tiles, want 16", n)
	}
}

func TestHiZCulling(t *testing.T) {
	h := NewHiZ(vp, 16)
	// Initially everything passes.
	if !h.Test(5, 5, 0.9) {
		t.Fatal("fresh HiZ must not cull")
	}
	// Full-cover write at depth 0.3 lowers the tile max.
	h.Update(5, 5, 0.3, true)
	if h.TileMax(5, 5) != 0.3 {
		t.Fatalf("tile max = %v", h.TileMax(5, 5))
	}
	if h.Test(5, 5, 0.5) {
		t.Fatal("fragment behind tile max must be culled")
	}
	if !h.Test(5, 5, 0.1) {
		t.Fatal("fragment in front must pass")
	}
	// Partial cover must NOT update (conservative).
	h.Update(40, 40, 0.1, false)
	if h.TileMax(40, 40) != 1 {
		t.Fatal("partial cover must not update HiZ")
	}
	if h.Culled != 1 || h.Tested != 3 {
		t.Fatalf("stats tested=%d culled=%d", h.Tested, h.Culled)
	}
	h.Clear()
	if h.TileMax(5, 5) != 1 {
		t.Fatal("clear must reset")
	}
}

func TestHiZNeverCullsVisible(t *testing.T) {
	// Property: HiZ.Test(minZ) only culls when minZ > every depth the
	// tile has been fully covered with.
	rng := rand.New(rand.NewSource(3))
	h := NewHiZ(vp, 16)
	written := float32(1)
	for i := 0; i < 500; i++ {
		z := rng.Float32()
		if rng.Intn(2) == 0 {
			h.Update(8, 8, z, true)
			if z < written {
				written = z
			}
		} else {
			pass := h.Test(8, 8, z)
			if !pass && z <= written {
				t.Fatalf("culled a potentially visible fragment: z=%v written=%v", z, written)
			}
		}
	}
}

func TestVertexOverlapPerMode(t *testing.T) {
	if Triangles.VertexOverlap() != 0 || TriangleStrip.VertexOverlap() != 2 {
		t.Fatal("overlap constants wrong")
	}
}

func TestFullCoverageMask(t *testing.T) {
	// A huge triangle covers interior tiles fully.
	p := tri(1, [3][2]float32{{-3, -3}, {3, -3}, {0, 3}}, 0)
	st, _ := Setup(p, vp)
	full := 0
	Rasterize(st, vp, func(rt *RasterTile) {
		if rt.Coverage == FullCoverage {
			full++
			if len(rt.Frags) != 16 {
				t.Fatal("full coverage tile must have 16 fragments")
			}
		}
	})
	if full == 0 {
		t.Fatal("expected some fully covered tiles")
	}
}
