package raster

import "emerald/internal/mathx"

// nearEps keeps clipped w strictly positive.
const nearEps = 1e-5

// CullResult describes what clipping & culling did with a primitive.
type CullResult uint8

// Cull outcomes.
const (
	Accepted CullResult = iota
	CulledFrustum
	CulledBackface
	CulledDegenerate
	Clipped
)

// ClipCull runs the clipping & culling stage (paper Figure 3, E) on one
// triangle: trivial frustum rejection, near-plane clipping (producing up
// to 2 triangles), and backface culling in screen space. cullBackfaces
// follows the GL state. Returned triangles have w > 0.
func ClipCull(p Primitive, cullBackfaces bool) ([]Primitive, CullResult) {
	// Trivial frustum rejection: all vertices outside one plane.
	allOut := func(test func(v mathx.Vec4) bool) bool {
		return test(p.V[0].Clip) && test(p.V[1].Clip) && test(p.V[2].Clip)
	}
	switch {
	case allOut(func(v mathx.Vec4) bool { return v.X > v.W }),
		allOut(func(v mathx.Vec4) bool { return v.X < -v.W }),
		allOut(func(v mathx.Vec4) bool { return v.Y > v.W }),
		allOut(func(v mathx.Vec4) bool { return v.Y < -v.W }),
		allOut(func(v mathx.Vec4) bool { return v.Z > v.W }),
		allOut(func(v mathx.Vec4) bool { return v.Z < -v.W }):
		return nil, CulledFrustum
	}

	// Near-plane clip (z >= -w, i.e. w+z >= 0) via Sutherland-Hodgman.
	tris, clipped := clipNear(p)
	if len(tris) == 0 {
		return nil, CulledFrustum
	}

	// Backface cull per resulting triangle (signed area in NDC).
	var out []Primitive
	for _, t := range tris {
		area := signedAreaNDC(t)
		if area == 0 {
			continue
		}
		if cullBackfaces && area < 0 {
			continue
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		if cullBackfaces {
			return nil, CulledBackface
		}
		return nil, CulledDegenerate
	}
	if clipped {
		return out, Clipped
	}
	return out, Accepted
}

// clipNear clips p against the near plane, emitting 1-2 triangles.
func clipNear(p Primitive) ([]Primitive, bool) {
	dist := func(v Vertex) float32 { return v.Clip.W + v.Clip.Z }
	inside := func(v Vertex) bool { return dist(v) > nearEps }

	allIn := inside(p.V[0]) && inside(p.V[1]) && inside(p.V[2])
	if allIn {
		return []Primitive{p}, false
	}

	var poly []Vertex
	for i := 0; i < 3; i++ {
		cur, nxt := p.V[i], p.V[(i+1)%3]
		if inside(cur) {
			poly = append(poly, cur)
		}
		if inside(cur) != inside(nxt) {
			t := dist(cur) / (dist(cur) - dist(nxt))
			poly = append(poly, lerpVertex(cur, nxt, t))
		}
	}
	if len(poly) < 3 {
		return nil, true
	}
	out := make([]Primitive, 0, len(poly)-2)
	for i := 1; i+1 < len(poly); i++ {
		out = append(out, Primitive{ID: p.ID, V: [3]Vertex{poly[0], poly[i], poly[i+1]}})
	}
	return out, true
}

func lerpVertex(a, b Vertex, t float32) Vertex {
	var v Vertex
	v.Clip = a.Clip.Lerp(b.Clip, t)
	for s := 0; s < MaxVaryings; s++ {
		for k := 0; k < 4; k++ {
			v.Attrs[s][k] = a.Attrs[s][k] + t*(b.Attrs[s][k]-a.Attrs[s][k])
		}
	}
	return v
}

// signedAreaNDC computes twice the signed area of the triangle in NDC
// (y up; positive = counter-clockwise = front-facing).
func signedAreaNDC(p Primitive) float32 {
	n := [3]mathx.Vec4{
		p.V[0].Clip.PerspectiveDivide(),
		p.V[1].Clip.PerspectiveDivide(),
		p.V[2].Clip.PerspectiveDivide(),
	}
	return (n[1].X-n[0].X)*(n[2].Y-n[0].Y) - (n[2].X-n[0].X)*(n[1].Y-n[0].Y)
}
