package raster

// RasterTileSize is the fine-raster tile edge in pixels (paper Table 7:
// 4x4 raster tiles).
const RasterTileSize = 4

// Fragment is one covered pixel produced by fine rasterization. It keeps
// a reference to its setup triangle plus the barycentrics, so fragment
// shading can lazily interpolate any varying.
type Fragment struct {
	Tri        *SetupTri
	X, Y       int
	Z          float32
	L0, L1, L2 float32
}

// RasterTile is the unit the fine rasterizer emits: the fragments of one
// primitive covering one 4x4 screen-aligned tile.
type RasterTile struct {
	Tri      *SetupTri
	TileX    int // tile origin in pixels
	TileY    int
	Frags    []Fragment
	Coverage uint16 // bit per pixel, row-major within the tile
}

// FullCoverage is the coverage mask of a completely covered raster tile.
const FullCoverage = uint16(0xFFFF)

// CoarseRaster enumerates the screen tiles (of the given tile size, in
// pixels) that the triangle's bounding box touches — the coarse
// rasterization stage (paper Figure 3, H). The callback receives tile
// origin coordinates.
func CoarseRaster(t *SetupTri, tileSize int, visit func(tx, ty int)) {
	x0 := t.X0 / tileSize * tileSize
	y0 := t.Y0 / tileSize * tileSize
	for ty := y0; ty < t.Y1; ty += tileSize {
		for tx := x0; tx < t.X1; tx += tileSize {
			visit(tx, ty)
		}
	}
}

// FineRaster tests the 16 pixels of the raster tile at (tileX, tileY)
// against the triangle and returns the covered fragments, or nil if
// empty (paper Figure 3, I). The viewport clamps pixel coordinates.
func FineRaster(t *SetupTri, tileX, tileY int, vp Viewport) *RasterTile {
	frags := FineRasterInto(t, tileX, tileY, vp, nil)
	if len(frags) == 0 {
		return nil
	}
	rt := &RasterTile{Tri: t, TileX: tileX, TileY: tileY, Frags: frags}
	for _, f := range frags {
		rt.Coverage |= 1 << ((f.Y-tileY)*RasterTileSize + (f.X - tileX))
	}
	return rt
}

// FineRasterInto appends the covered fragments of the raster tile at
// (tileX, tileY) to frags and returns the extended slice — the
// allocation-free core of FineRaster, for callers that batch fragments
// across tiles themselves (the functional draw executor). Fragment
// order matches FineRaster exactly.
func FineRasterInto(t *SetupTri, tileX, tileY int, vp Viewport, frags []Fragment) []Fragment {
	for dy := 0; dy < RasterTileSize; dy++ {
		py := tileY + dy
		if py < 0 || py >= vp.Height {
			continue
		}
		for dx := 0; dx < RasterTileSize; dx++ {
			px := tileX + dx
			if px < 0 || px >= vp.Width {
				continue
			}
			l0, l1, l2, inside := t.Bary(px, py)
			if !inside {
				continue
			}
			frags = append(frags, Fragment{
				Tri: t, X: px, Y: py,
				Z:  t.DepthAt(l0, l1, l2),
				L0: l0, L1: l1, L2: l2,
			})
		}
	}
	return frags
}

// Rasterize runs coarse+fine rasterization over the whole triangle,
// emitting non-empty raster tiles in tile-scan order.
func Rasterize(t *SetupTri, vp Viewport, emit func(*RasterTile)) {
	CoarseRaster(t, RasterTileSize, func(tx, ty int) {
		if rt := FineRaster(t, tx, ty, vp); rt != nil {
			emit(rt)
		}
	})
}
