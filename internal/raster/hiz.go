package raster

// HiZ is the Hierarchical-Z buffer (paper Figure 3, J): a low-resolution
// on-chip buffer holding, per screen tile, a conservative maximum of the
// depth values currently in the depth buffer. An incoming fragment tile
// whose minimum depth exceeds the stored maximum is provably occluded
// and can be discarded before fragment shading.
type HiZ struct {
	TileSize       int
	TilesX, TilesY int
	maxZ           []float32

	Tested, Culled int64 // stats
}

// NewHiZ builds a Hi-Z buffer for a vp using the given tile edge.
func NewHiZ(vp Viewport, tileSize int) *HiZ {
	tx := (vp.Width + tileSize - 1) / tileSize
	ty := (vp.Height + tileSize - 1) / tileSize
	h := &HiZ{TileSize: tileSize, TilesX: tx, TilesY: ty, maxZ: make([]float32, tx*ty)}
	h.Clear()
	return h
}

// Clear resets every tile to the far plane.
func (h *HiZ) Clear() {
	for i := range h.maxZ {
		h.maxZ[i] = 1
	}
	h.Tested = 0
	h.Culled = 0
}

func (h *HiZ) index(px, py int) int {
	tx := px / h.TileSize
	ty := py / h.TileSize
	if tx < 0 || tx >= h.TilesX || ty < 0 || ty >= h.TilesY {
		return -1
	}
	return ty*h.TilesX + tx
}

// TileMax returns the stored conservative max depth for the tile
// containing pixel (px,py).
func (h *HiZ) TileMax(px, py int) float32 {
	i := h.index(px, py)
	if i < 0 {
		return 1
	}
	return h.maxZ[i]
}

// Test reports whether a fragment tile with minimum depth minZ at pixel
// (px,py) might be visible. False means provably occluded.
func (h *HiZ) Test(px, py int, minZ float32) bool {
	h.Tested++
	i := h.index(px, py)
	if i < 0 {
		return true
	}
	if minZ > h.maxZ[i] {
		h.Culled++
		return false
	}
	return true
}

// Update lowers the tile's stored max depth after a depth write that
// covered the *entire* Hi-Z tile with maximum written depth z (the only
// update that is safe without re-reading the full-resolution buffer).
func (h *HiZ) Update(px, py int, tileMaxZ float32, fullCover bool) {
	if !fullCover {
		return
	}
	i := h.index(px, py)
	if i >= 0 && tileMaxZ < h.maxZ[i] {
		h.maxZ[i] = tileMaxZ
	}
}
