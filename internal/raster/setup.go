package raster

import "emerald/internal/mathx"

// SetupTri is a screen-space triangle after primitive setup (paper
// Figure 3, G): screen coordinates, depth and perspective-corrected
// attribute planes, ready for rasterization.
type SetupTri struct {
	ID uint32

	// Screen-space vertex positions (pixels) and depth in [0,1].
	X, Y, Z [3]float32
	// InvW at each vertex for perspective-correct interpolation.
	InvW [3]float32
	// AttrOverW: varyings pre-divided by w at each vertex.
	AttrOverW [3][MaxVaryings][4]float32

	// Edge function area (2x signed) and bounding box (inclusive min,
	// exclusive max, clamped to the viewport).
	Area           float32
	X0, Y0, X1, Y1 int

	// edgeIn applies the top-left fill rule: whether a pixel exactly on
	// edge i counts as covered, so triangles sharing an edge never shade
	// a pixel twice nor leave a crack.
	edgeIn [3]bool

	// BackFacing reports original orientation (rendered when culling is
	// off).
	BackFacing bool
}

// Setup performs the viewport transform and attribute plane setup for a
// clipped primitive; ok=false means zero-area or out of viewport.
func Setup(p Primitive, vp Viewport) (*SetupTri, bool) {
	t := &SetupTri{ID: p.ID}
	for i := 0; i < 3; i++ {
		ndc := p.V[i].Clip.PerspectiveDivide()
		// Viewport: x right, y down (framebuffer convention).
		t.X[i] = (ndc.X*0.5 + 0.5) * float32(vp.Width)
		t.Y[i] = (0.5 - ndc.Y*0.5) * float32(vp.Height)
		t.Z[i] = mathx.Clamp(ndc.Z*0.5+0.5, 0, 1)
		t.InvW[i] = ndc.W // PerspectiveDivide stores 1/w in W
		for s := 0; s < MaxVaryings; s++ {
			for k := 0; k < 4; k++ {
				t.AttrOverW[i][s][k] = p.V[i].Attrs[s][k] * t.InvW[i]
			}
		}
	}
	t.Area = (t.X[1]-t.X[0])*(t.Y[2]-t.Y[0]) - (t.X[2]-t.X[0])*(t.Y[1]-t.Y[0])
	if t.Area == 0 {
		return nil, false
	}
	if t.Area < 0 {
		t.BackFacing = true
	}
	// Top-left rule: edge i (opposite vertex i) has gradient
	// (A, B) = d(edge_i)/d(x, y), sign-corrected for orientation so the
	// interior is the positive side. Include boundary pixels on "left"
	// edges (A > 0) and "top" edges (A == 0, B > 0); exclude the rest.
	sgn := float32(1)
	if t.Area < 0 {
		sgn = -1
	}
	for i := 0; i < 3; i++ {
		a, b := (i+1)%3, (i+2)%3
		A := (t.Y[a] - t.Y[b]) * sgn
		B := (t.X[b] - t.X[a]) * sgn
		t.edgeIn[i] = A > 0 || (A == 0 && B > 0)
	}

	minf := func(a, b, c float32) float32 { return mathx.Min(a, mathx.Min(b, c)) }
	maxf := func(a, b, c float32) float32 { return mathx.Max(a, mathx.Max(b, c)) }
	t.X0 = clampi(int(mathx.Floor(minf(t.X[0], t.X[1], t.X[2]))), 0, vp.Width)
	t.Y0 = clampi(int(mathx.Floor(minf(t.Y[0], t.Y[1], t.Y[2]))), 0, vp.Height)
	t.X1 = clampi(int(mathx.Ceil(maxf(t.X[0], t.X[1], t.X[2])))+1, 0, vp.Width)
	t.Y1 = clampi(int(mathx.Ceil(maxf(t.Y[0], t.Y[1], t.Y[2])))+1, 0, vp.Height)
	if t.X0 >= t.X1 || t.Y0 >= t.Y1 {
		return nil, false
	}
	return t, true
}

func clampi(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Bary evaluates the barycentric coordinates of pixel center (px+0.5,
// py+0.5); inside is true when the point is within the triangle
// (inclusive top-left-ish rule via >= 0 on normalized coordinates).
func (t *SetupTri) Bary(px, py int) (l0, l1, l2 float32, inside bool) {
	x := float32(px) + 0.5
	y := float32(py) + 0.5
	e0 := (t.X[1]-x)*(t.Y[2]-y) - (t.X[2]-x)*(t.Y[1]-y) // opposite v0
	e1 := (t.X[2]-x)*(t.Y[0]-y) - (t.X[0]-x)*(t.Y[2]-y) // opposite v1
	e2 := (t.X[0]-x)*(t.Y[1]-y) - (t.X[1]-x)*(t.Y[0]-y) // opposite v2
	inv := 1 / t.Area
	l0, l1, l2 = e0*inv, e1*inv, e2*inv
	in := func(i int, l float32) bool {
		return l > 0 || (l == 0 && t.edgeIn[i])
	}
	inside = in(0, l0) && in(1, l1) && in(2, l2)
	return
}

// DepthAt interpolates depth at barycentrics (screen-space linear).
func (t *SetupTri) DepthAt(l0, l1, l2 float32) float32 {
	return l0*t.Z[0] + l1*t.Z[1] + l2*t.Z[2]
}

// AttrAt interpolates varying slot with perspective correction.
func (t *SetupTri) AttrAt(slot int, l0, l1, l2 float32) [4]float32 {
	invW := l0*t.InvW[0] + l1*t.InvW[1] + l2*t.InvW[2]
	var out [4]float32
	if invW == 0 {
		return out
	}
	w := 1 / invW
	for k := 0; k < 4; k++ {
		out[k] = (l0*t.AttrOverW[0][slot][k] +
			l1*t.AttrOverW[1][slot][k] +
			l2*t.AttrOverW[2][slot][k]) * w
	}
	return out
}

// MinZ returns the minimum vertex depth (conservative nearest, for
// Hi-Z testing).
func (t *SetupTri) MinZ() float32 {
	return mathx.Min(t.Z[0], mathx.Min(t.Z[1], t.Z[2]))
}
