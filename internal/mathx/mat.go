package mathx

import "math"

// Mat4 is a 4x4 float32 matrix stored in column-major order, matching the
// OpenGL convention: element (row r, col c) is at index c*4+r.
type Mat4 [16]float32

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// At returns element (row, col).
func (m Mat4) At(row, col int) float32 { return m[col*4+row] }

// Set stores v at element (row, col) and returns the updated matrix.
func (m Mat4) Set(row, col int, v float32) Mat4 {
	m[col*4+row] = v
	return m
}

// Mul returns m*n (column-vector convention: (m.Mul(n)).MulVec(v) ==
// m.MulVec(n.MulVec(v))).
func (m Mat4) Mul(n Mat4) Mat4 {
	var r Mat4
	for c := 0; c < 4; c++ {
		for row := 0; row < 4; row++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[k*4+row] * n[c*4+k]
			}
			r[c*4+row] = s
		}
	}
	return r
}

// MulVec returns m*v.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m[0]*v.X + m[4]*v.Y + m[8]*v.Z + m[12]*v.W,
		m[1]*v.X + m[5]*v.Y + m[9]*v.Z + m[13]*v.W,
		m[2]*v.X + m[6]*v.Y + m[10]*v.Z + m[14]*v.W,
		m[3]*v.X + m[7]*v.Y + m[11]*v.Z + m[15]*v.W,
	}
}

// Transpose returns the transpose of m.
func (m Mat4) Transpose() Mat4 {
	var r Mat4
	for c := 0; c < 4; c++ {
		for row := 0; row < 4; row++ {
			r[row*4+c] = m[c*4+row]
		}
	}
	return r
}

// Translate returns a translation matrix.
func Translate(x, y, z float32) Mat4 {
	m := Identity()
	m[12], m[13], m[14] = x, y, z
	return m
}

// ScaleM returns a scaling matrix.
func ScaleM(x, y, z float32) Mat4 {
	m := Identity()
	m[0], m[5], m[10] = x, y, z
	return m
}

// RotateX returns a rotation matrix about the X axis (angle in radians).
func RotateX(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[5], m[9] = c, -s
	m[6], m[10] = s, c
	return m
}

// RotateY returns a rotation matrix about the Y axis (angle in radians).
func RotateY(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[0], m[8] = c, s
	m[2], m[10] = -s, c
	return m
}

// RotateZ returns a rotation matrix about the Z axis (angle in radians).
func RotateZ(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[0], m[4] = c, -s
	m[1], m[5] = s, c
	return m
}

func sincos(a float32) (sin, cos float32) {
	s, c := math.Sincos(float64(a))
	return float32(s), float32(c)
}

// Perspective returns an OpenGL-style perspective projection matrix.
// fovy is the vertical field of view in radians; near/far are positive
// distances to the clip planes.
func Perspective(fovy, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovy)/2))
	var m Mat4
	m[0] = f / aspect
	m[5] = f
	m[10] = (far + near) / (near - far)
	m[11] = -1
	m[14] = 2 * far * near / (near - far)
	return m
}

// LookAt returns a view matrix placing the camera at eye, looking at
// center, with the given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	m := Identity()
	m[0], m[4], m[8] = s.X, s.Y, s.Z
	m[1], m[5], m[9] = u.X, u.Y, u.Z
	m[2], m[6], m[10] = -f.X, -f.Y, -f.Z
	return m.Mul(Translate(-eye.X, -eye.Y, -eye.Z))
}

// Invert returns the inverse of m and whether m was invertible. A general
// cofactor expansion is used; graphics matrices are small enough that the
// O(1) cost is irrelevant.
func (m Mat4) Invert() (Mat4, bool) {
	var inv Mat4
	inv[0] = m[5]*m[10]*m[15] - m[5]*m[11]*m[14] - m[9]*m[6]*m[15] + m[9]*m[7]*m[14] + m[13]*m[6]*m[11] - m[13]*m[7]*m[10]
	inv[4] = -m[4]*m[10]*m[15] + m[4]*m[11]*m[14] + m[8]*m[6]*m[15] - m[8]*m[7]*m[14] - m[12]*m[6]*m[11] + m[12]*m[7]*m[10]
	inv[8] = m[4]*m[9]*m[15] - m[4]*m[11]*m[13] - m[8]*m[5]*m[15] + m[8]*m[7]*m[13] + m[12]*m[5]*m[11] - m[12]*m[7]*m[9]
	inv[12] = -m[4]*m[9]*m[14] + m[4]*m[10]*m[13] + m[8]*m[5]*m[14] - m[8]*m[6]*m[13] - m[12]*m[5]*m[10] + m[12]*m[6]*m[9]
	inv[1] = -m[1]*m[10]*m[15] + m[1]*m[11]*m[14] + m[9]*m[2]*m[15] - m[9]*m[3]*m[14] - m[13]*m[2]*m[11] + m[13]*m[3]*m[10]
	inv[5] = m[0]*m[10]*m[15] - m[0]*m[11]*m[14] - m[8]*m[2]*m[15] + m[8]*m[3]*m[14] + m[12]*m[2]*m[11] - m[12]*m[3]*m[10]
	inv[9] = -m[0]*m[9]*m[15] + m[0]*m[11]*m[13] + m[8]*m[1]*m[15] - m[8]*m[3]*m[13] - m[12]*m[1]*m[11] + m[12]*m[3]*m[9]
	inv[13] = m[0]*m[9]*m[14] - m[0]*m[10]*m[13] - m[8]*m[1]*m[14] + m[8]*m[2]*m[13] + m[12]*m[1]*m[10] - m[12]*m[2]*m[9]
	inv[2] = m[1]*m[6]*m[15] - m[1]*m[7]*m[14] - m[5]*m[2]*m[15] + m[5]*m[3]*m[14] + m[13]*m[2]*m[7] - m[13]*m[3]*m[6]
	inv[6] = -m[0]*m[6]*m[15] + m[0]*m[7]*m[14] + m[4]*m[2]*m[15] - m[4]*m[3]*m[14] - m[12]*m[2]*m[7] + m[12]*m[3]*m[6]
	inv[10] = m[0]*m[5]*m[15] - m[0]*m[7]*m[13] - m[4]*m[1]*m[15] + m[4]*m[3]*m[13] + m[12]*m[1]*m[7] - m[12]*m[3]*m[5]
	inv[14] = -m[0]*m[5]*m[14] + m[0]*m[6]*m[13] + m[4]*m[1]*m[14] - m[4]*m[2]*m[13] - m[12]*m[1]*m[6] + m[12]*m[2]*m[5]
	inv[3] = -m[1]*m[6]*m[11] + m[1]*m[7]*m[10] + m[5]*m[2]*m[11] - m[5]*m[3]*m[10] - m[9]*m[2]*m[7] + m[9]*m[3]*m[6]
	inv[7] = m[0]*m[6]*m[11] - m[0]*m[7]*m[10] - m[4]*m[2]*m[11] + m[4]*m[3]*m[10] + m[8]*m[2]*m[7] - m[8]*m[3]*m[6]
	inv[11] = -m[0]*m[5]*m[11] + m[0]*m[7]*m[9] + m[4]*m[1]*m[11] - m[4]*m[3]*m[9] - m[8]*m[1]*m[7] + m[8]*m[3]*m[5]
	inv[15] = m[0]*m[5]*m[10] - m[0]*m[6]*m[9] - m[4]*m[1]*m[10] + m[4]*m[2]*m[9] + m[8]*m[1]*m[6] - m[8]*m[2]*m[5]

	det := m[0]*inv[0] + m[1]*inv[4] + m[2]*inv[8] + m[3]*inv[12]
	if det == 0 {
		return Identity(), false
	}
	d := 1 / det
	for i := range inv {
		inv[i] *= d
	}
	return inv, true
}
