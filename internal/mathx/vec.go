// Package mathx provides the float32 linear algebra used throughout the
// simulator: small vectors, 4x4 matrices, and the projective transforms
// needed by the graphics pipeline. Everything is value-typed and
// allocation-free so it can sit on the hot path of the rasterizer and
// shader interpreter.
package mathx

import "math"

// Vec2 is a 2-component float32 vector.
type Vec2 struct{ X, Y float32 }

// Vec3 is a 3-component float32 vector.
type Vec3 struct{ X, Y, Z float32 }

// Vec4 is a 4-component float32 vector (homogeneous coordinates, RGBA).
type Vec4 struct{ X, Y, Z, W float32 }

// V2 constructs a Vec2.
func V2(x, y float32) Vec2 { return Vec2{x, y} }

// V3 constructs a Vec3.
func V3(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// V4 constructs a Vec4.
func V4(x, y, z, w float32) Vec4 { return Vec4{x, y, z, w} }

// Add returns v+u.
func (v Vec2) Add(u Vec2) Vec2 { return Vec2{v.X + u.X, v.Y + u.Y} }

// Sub returns v-u.
func (v Vec2) Sub(u Vec2) Vec2 { return Vec2{v.X - u.X, v.Y - u.Y} }

// Scale returns v*s.
func (v Vec2) Scale(s float32) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product of v and u.
func (v Vec2) Dot(u Vec2) float32 { return v.X*u.X + v.Y*u.Y }

// Add returns v+u.
func (v Vec3) Add(u Vec3) Vec3 { return Vec3{v.X + u.X, v.Y + u.Y, v.Z + u.Z} }

// Sub returns v-u.
func (v Vec3) Sub(u Vec3) Vec3 { return Vec3{v.X - u.X, v.Y - u.Y, v.Z - u.Z} }

// Mul returns the component-wise product of v and u.
func (v Vec3) Mul(u Vec3) Vec3 { return Vec3{v.X * u.X, v.Y * u.Y, v.Z * u.Z} }

// Scale returns v*s.
func (v Vec3) Scale(s float32) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and u.
func (v Vec3) Dot(u Vec3) float32 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z }

// Cross returns the cross product v x u.
func (v Vec3) Cross(u Vec3) Vec3 {
	return Vec3{
		v.Y*u.Z - v.Z*u.Y,
		v.Z*u.X - v.X*u.Z,
		v.X*u.Y - v.Y*u.X,
	}
}

// Len returns the Euclidean length of v.
func (v Vec3) Len() float32 { return Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Add returns v+u.
func (v Vec4) Add(u Vec4) Vec4 { return Vec4{v.X + u.X, v.Y + u.Y, v.Z + u.Z, v.W + u.W} }

// Sub returns v-u.
func (v Vec4) Sub(u Vec4) Vec4 { return Vec4{v.X - u.X, v.Y - u.Y, v.Z - u.Z, v.W - u.W} }

// Scale returns v*s.
func (v Vec4) Scale(s float32) Vec4 { return Vec4{v.X * s, v.Y * s, v.Z * s, v.W * s} }

// Dot returns the dot product of v and u.
func (v Vec4) Dot(u Vec4) float32 { return v.X*u.X + v.Y*u.Y + v.Z*u.Z + v.W*u.W }

// XYZ drops the W component.
func (v Vec4) XYZ() Vec3 { return Vec3{v.X, v.Y, v.Z} }

// PerspectiveDivide returns v/(v.W), with W preserved as 1/w for
// perspective-correct interpolation. A zero W is passed through untouched
// (the clipper guarantees w>0 for everything that reaches the rasterizer).
func (v Vec4) PerspectiveDivide() Vec4 {
	if v.W == 0 {
		return v
	}
	inv := 1 / v.W
	return Vec4{v.X * inv, v.Y * inv, v.Z * inv, inv}
}

// Lerp returns v + t*(u-v).
func (v Vec4) Lerp(u Vec4, t float32) Vec4 {
	return Vec4{
		v.X + t*(u.X-v.X),
		v.Y + t*(u.Y-v.Y),
		v.Z + t*(u.Z-v.Z),
		v.W + t*(u.W-v.W),
	}
}

// Sqrt is float32 square root.
func Sqrt(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Abs is float32 absolute value.
func Abs(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// Floor is float32 floor.
func Floor(x float32) float32 { return float32(math.Floor(float64(x))) }

// Ceil is float32 ceiling.
func Ceil(x float32) float32 { return float32(math.Ceil(float64(x))) }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float32) float32 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Min returns the smaller of a and b.
func Min(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}
