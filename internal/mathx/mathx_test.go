package mathx

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func close32(a, b, eps float32) bool { return Abs(a-b) <= eps }

func vecClose(a, b Vec4, eps float32) bool {
	return close32(a.X, b.X, eps) && close32(a.Y, b.Y, eps) &&
		close32(a.Z, b.Z, eps) && close32(a.W, b.W, eps)
}

func TestVec3Cross(t *testing.T) {
	x, y := V3(1, 0, 0), V3(0, 1, 0)
	if got := x.Cross(y); got != V3(0, 0, 1) {
		t.Fatalf("x cross y = %v, want (0,0,1)", got)
	}
	if got := y.Cross(x); got != V3(0, 0, -1) {
		t.Fatalf("y cross x = %v, want (0,0,-1)", got)
	}
}

func TestVec3Normalize(t *testing.T) {
	v := V3(3, 4, 0).Normalize()
	if !close32(v.Len(), 1, 1e-6) {
		t.Fatalf("normalized length %v, want 1", v.Len())
	}
	if z := V3(0, 0, 0).Normalize(); z != V3(0, 0, 0) {
		t.Fatalf("zero vector normalize = %v, want zero", z)
	}
}

// Property: cross product is perpendicular to both operands.
func TestCrossPerpendicularProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a, b := V3(ax, ay, az), V3(bx, by, bz)
		c := a.Cross(b)
		// Scale tolerance with magnitudes to stay robust for large inputs.
		tol := 1e-3 * (1 + Abs(a.Len())*Abs(b.Len()))
		return Abs(c.Dot(a)) <= tol && Abs(c.Dot(b)) <= tol
	}
	cfg := &quick.Config{MaxCount: 200, Values: smallFloats(6)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMat4Identity(t *testing.T) {
	v := V4(1, 2, 3, 4)
	if got := Identity().MulVec(v); got != v {
		t.Fatalf("I*v = %v, want %v", got, v)
	}
}

func TestMat4MulAssociatesWithMulVec(t *testing.T) {
	m := Translate(1, 2, 3)
	n := ScaleM(2, 2, 2)
	v := V4(1, 1, 1, 1)
	a := m.Mul(n).MulVec(v)
	b := m.MulVec(n.MulVec(v))
	if !vecClose(a, b, 1e-5) {
		t.Fatalf("(mn)v=%v != m(nv)=%v", a, b)
	}
	if want := V4(3, 4, 5, 1); !vecClose(a, want, 1e-5) {
		t.Fatalf("translate(scale(v)) = %v, want %v", a, want)
	}
}

func TestMat4TransposeInvolution(t *testing.T) {
	m := Perspective(1.0, 1.5, 0.1, 100)
	if m.Transpose().Transpose() != m {
		t.Fatal("transpose(transpose(m)) != m")
	}
}

func TestRotationPreservesLength(t *testing.T) {
	f := func(angle, x, y, z float32) bool {
		v := V4(x, y, z, 0)
		for _, r := range []Mat4{RotateX(angle), RotateY(angle), RotateZ(angle)} {
			got := r.MulVec(v)
			l0 := Sqrt(v.Dot(v))
			l1 := Sqrt(got.Dot(got))
			if !close32(l0, l1, 1e-2*(1+l0)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: smallFloats(4)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInvertRoundTrip(t *testing.T) {
	m := Translate(3, -2, 7).Mul(RotateY(0.7)).Mul(ScaleM(2, 3, 4))
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("matrix reported singular")
	}
	id := m.Mul(inv)
	want := Identity()
	for i := range id {
		if !close32(id[i], want[i], 1e-4) {
			t.Fatalf("m*inv(m)[%d] = %v, want %v", i, id[i], want[i])
		}
	}
}

func TestInvertSingular(t *testing.T) {
	var zero Mat4
	if _, ok := zero.Invert(); ok {
		t.Fatal("zero matrix reported invertible")
	}
}

func TestLookAtMapsEyeToOrigin(t *testing.T) {
	eye := V3(5, 3, -2)
	m := LookAt(eye, V3(0, 0, 0), V3(0, 1, 0))
	got := m.MulVec(V4(eye.X, eye.Y, eye.Z, 1))
	if !vecClose(got, V4(0, 0, 0, 1), 1e-4) {
		t.Fatalf("lookAt(eye) = %v, want origin", got)
	}
}

func TestPerspectiveDepthRange(t *testing.T) {
	p := Perspective(1.2, 1.0, 1, 100)
	near := p.MulVec(V4(0, 0, -1, 1)).PerspectiveDivide()
	far := p.MulVec(V4(0, 0, -100, 1)).PerspectiveDivide()
	if !close32(near.Z, -1, 1e-4) {
		t.Fatalf("near plane maps to z=%v, want -1", near.Z)
	}
	if !close32(far.Z, 1, 1e-4) {
		t.Fatalf("far plane maps to z=%v, want 1", far.Z)
	}
}

func TestPerspectiveDivide(t *testing.T) {
	v := V4(2, 4, 6, 2).PerspectiveDivide()
	if !vecClose(v, V4(1, 2, 3, 0.5), 1e-6) {
		t.Fatalf("divide = %v", v)
	}
	z := V4(1, 2, 3, 0)
	if z.PerspectiveDivide() != z {
		t.Fatal("w=0 should pass through")
	}
}

func TestClampMinMax(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("clamp broken")
	}
	if Min(2, 3) != 2 || Max(2, 3) != 3 {
		t.Fatal("min/max broken")
	}
}

func TestLerp(t *testing.T) {
	a, b := V4(0, 0, 0, 0), V4(2, 4, 6, 8)
	if got := a.Lerp(b, 0.5); !vecClose(got, V4(1, 2, 3, 4), 1e-6) {
		t.Fatalf("lerp = %v", got)
	}
}

func TestFloorCeil(t *testing.T) {
	if Floor(1.7) != 1 || Ceil(1.2) != 2 || Floor(-0.5) != -1 {
		t.Fatal("floor/ceil broken")
	}
}

// smallFloats returns a quick.Config value generator producing float32
// arguments bounded to a well-conditioned range, so property tests do not
// trip on float32 catastrophic cancellation with extreme inputs.
func smallFloats(n int) func([]reflect.Value, *rand.Rand) {
	return func(args []reflect.Value, r *rand.Rand) {
		for i := 0; i < n; i++ {
			args[i] = reflect.ValueOf(float32(r.Float64()*200 - 100))
		}
	}
}
