package soc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// An already-cancelled context must stop the run at the first poll
// point: the tick loop checks ctx every 1024 cycles, so the SoC cannot
// advance past the first check window.
func TestRunCtxAlreadyCancelled(t *testing.T) {
	s, err := New(smallConfig(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = s.RunCtx(ctx, 30_000_000)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if s.Cycle() >= 2048 {
		t.Fatalf("cancelled run advanced %d cycles, want < 2048", s.Cycle())
	}
}

// A deadline expiring mid-simulation must cancel the tick loop well
// before the frame target completes.
func TestRunCtxTimeoutMidRun(t *testing.T) {
	cfg := smallConfig(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err = s.RunCtx(ctx, 30_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunCtx = %v, want context.DeadlineExceeded", err)
	}
	if len(s.Frames) >= cfg.Frames+cfg.WarmupFrames {
		t.Fatalf("run finished all %d frames despite the deadline", len(s.Frames))
	}
}

// A nil context must behave exactly like Run.
func TestRunCtxNil(t *testing.T) {
	s, err := New(smallConfig(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RunCtx(nil, 30_000_000); err != nil {
		t.Fatal(err)
	}
}
