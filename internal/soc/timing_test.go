package soc

import (
	"testing"

	"emerald/internal/dram"
	"emerald/internal/sched"
	"emerald/internal/stats"
)

// TestFrameStatsTotalCyclesSet is the regression test for the
// frame-accounting bug where only back-filled frames ever received a
// TotalCycles: the run's final frame reported zero and silently fell
// out of MeanFrameCycles. Every completed frame must report a nonzero
// total span, submit-to-submit for frames with a successor and
// submit-to-complete for the last one.
func TestFrameStatsTotalCyclesSet(t *testing.T) {
	cfg := smallConfig(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) < 2 {
		t.Fatalf("need >= 2 frames, got %d", len(s.Frames))
	}
	for i, f := range s.Frames {
		if f.TotalCycles == 0 {
			t.Errorf("frame %d: TotalCycles unset", i)
		}
		if f.TotalCycles < f.GPUCycles {
			t.Errorf("frame %d: TotalCycles %d < GPUCycles %d",
				i, f.TotalCycles, f.GPUCycles)
		}
	}
	for i := 0; i+1 < len(s.Frames); i++ {
		want := s.Frames[i+1].SubmitCycle - s.Frames[i].SubmitCycle
		if s.Frames[i].TotalCycles != want {
			t.Errorf("frame %d: TotalCycles = %d, want submit-to-submit %d",
				i, s.Frames[i].TotalCycles, want)
		}
	}
}

// TestDashFeedbackIntervalFollowsSchedulingUnit checks that the SoC's
// DASH progress-feedback cadence is derived from the scheduler's
// configured scheduling unit rather than a hardcoded constant.
func TestDashFeedbackIntervalFollowsSchedulingUnit(t *testing.T) {
	build := func(unit uint64) *SoC {
		cfg := smallConfig(t)
		dashCfg := sched.DefaultDASHConfig(cfg.NumCPUs, false)
		dashCfg.SchedulingUnit = unit
		dcfg, dash := sched.DASHDRAM("dram", dram.LPDDR3Geometry(2),
			dram.LPDDR3Timing(1333), dashCfg)
		cfg.DRAM = dcfg
		cfg.DASH = dash
		s, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	if got := build(512).dashFeedbackEvery; got != 512 {
		t.Errorf("dashFeedbackEvery = %d, want the configured scheduling unit 512", got)
	}
	if got := build(0).dashFeedbackEvery; got != 1000 {
		t.Errorf("dashFeedbackEvery = %d, want the 1000-cycle fallback for a zero unit", got)
	}
}

// TestDisplayDeadlineAccounting exercises both Display.Tick deadline
// paths: periods whose scan finishes in time count as shown, starved
// periods count as dropped (and never as shown).
func TestDisplayDeadlineAccounting(t *testing.T) {
	reg := stats.NewRegistry()
	d := NewDisplay(10_000, reg)
	d.SetFrontBuffer(testSurface())
	cycle := uint64(0)
	serve := func(periods int, complete bool) {
		for end := cycle + uint64(periods)*d.Period; cycle < end; cycle++ {
			d.Tick(cycle)
			for {
				r := d.Out.Pop()
				if r == nil {
					break
				}
				if complete {
					r.Complete(cycle + 1)
				}
			}
		}
	}
	// The first period is the parked pre-kickoff window (scanning
	// starts at the first refresh boundary), so four periods give two
	// completed deadline checks.
	serve(4, true)
	shown, dropped := d.FramesShown(), d.FramesDropped()
	if shown < 2 || dropped != 0 {
		t.Fatalf("fast phase: shown=%d dropped=%d, want >=2 shown and 0 dropped", shown, dropped)
	}
	serve(3, false)
	if d.FramesDropped() == 0 {
		t.Fatal("starved phase produced no dropped frames")
	}
	// The scan straddling the transition may still complete; beyond that
	// every starved period must be a drop, never a show.
	if d.FramesShown() > shown+1 {
		t.Fatalf("starved phase counted shown frames: %d -> %d", shown, d.FramesShown())
	}
}

// TestDisplayPacingRestartsAfterDrop checks that a dropped frame
// restarts the scan from zero — issue pacing and completion counts
// reset — and that the display recovers (shows frames again) once
// memory keeps up.
func TestDisplayPacingRestartsAfterDrop(t *testing.T) {
	reg := stats.NewRegistry()
	d := NewDisplay(10_000, reg)
	d.SetFrontBuffer(testSurface())
	cycle := uint64(0)
	for ; d.FramesDropped() == 0; cycle++ {
		if cycle > 200_000 {
			t.Fatal("display never dropped while starved")
		}
		d.Tick(cycle)
		for d.Out.Pop() != nil {
		}
	}
	if d.issued != 0 || d.completed != 0 {
		t.Fatalf("pacing not reset after drop: issued=%d completed=%d",
			d.issued, d.completed)
	}
	if len(d.inflight) != 0 {
		t.Fatalf("inflight not cleared after drop: %d", len(d.inflight))
	}
	shown := d.FramesShown()
	for end := cycle + 2*d.Period; cycle < end; cycle++ {
		d.Tick(cycle)
		for {
			r := d.Out.Pop()
			if r == nil {
				break
			}
			r.Complete(cycle + 1)
		}
	}
	if d.FramesShown() <= shown {
		t.Fatal("display did not recover after a drop once memory kept up")
	}
}
