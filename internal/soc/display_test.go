package soc

import (
	"testing"

	"emerald/internal/mem"
)

// TestIdleDisplayDoesNotDefeatSkipping is the regression test for the
// display busy-pin: NextWake used to return "now" whenever totalReqs
// was zero, so a configured-but-never-scanned panel pinned the whole
// loop to cycle-by-cycle ticking. A parked panel must report its first
// refresh boundary (NeverWake before any framebuffer is attached), and
// Tick must agree — no observable state change before the boundary, a
// kickoff exactly at it.
func TestIdleDisplayDoesNotDefeatSkipping(t *testing.T) {
	const period = 10_000
	d := NewDisplay(period, nil)
	if got := d.NextWake(0); got != mem.NeverWake {
		t.Fatalf("unconfigured display NextWake = %d, want NeverWake", got)
	}
	d.SetFrontBuffer(testSurface())
	if got := d.NextWake(0); got != period {
		t.Fatalf("configured idle display NextWake = %d, want first refresh boundary %d", got, period)
	}
	if got := d.NextWake(period / 2); got != period {
		t.Fatalf("mid-park NextWake = %d, want %d", got, period/2+period/2)
	}

	// Ticking inside the parked window must be a no-op.
	d.Tick(period / 2)
	if d.Out.Len() != 0 || d.FrameStart() != 0 || d.FramesShown()+d.FramesDropped() != 0 {
		t.Fatal("parked display changed state before the refresh boundary")
	}

	// The scan kicks off at the boundary, regardless of whether the
	// owner ticked during the parked window.
	d.Tick(period)
	if d.FrameStart() != period {
		t.Fatalf("scan kickoff at FrameStart %d, want %d", d.FrameStart(), period)
	}
	w := d.NextWake(period)
	if w <= period || w == mem.NeverWake {
		t.Fatalf("scanning display NextWake = %d, want a finite future cycle", w)
	}
	if limit := uint64(2 * period); w > limit {
		t.Fatalf("scanning display NextWake = %d, beyond next deadline %d", w, limit)
	}
}
