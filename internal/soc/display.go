// Package soc implements Emerald's full-system mode (paper Figures 1 and
// 8b): CPU cores running the frame-production workload, the GPU, a
// display controller, a coherent system NoC and shared DRAM. It is the
// substrate for Case Study I (memory organization and scheduling).
//
// Time scaling: the paper simulates wall-clock frame periods (16 ms
// display, 33 ms GPU at ~1 GHz = millions of cycles per frame). To keep
// experiment turnaround tractable, the SoC uses *scaled* frame periods
// (hundreds of thousands of cycles) with the framebuffer sized so the
// bandwidth ratios between display scan-out, GPU rendering and CPU
// traffic match the paper's regime. EXPERIMENTS.md documents the scaling.
package soc

import (
	"emerald/internal/emtrace"
	"emerald/internal/gfx"
	"emerald/internal/mem"
	"emerald/internal/stats"
)

// Display is the scan-out DMA engine: it reads the front framebuffer
// sequentially once per refresh period. If a scan cannot finish within
// its period the frame is dropped and the scan restarts — the feedback
// loop the paper observes under DASH (Figure 14, callout 6).
type Display struct {
	Period uint64 // cycles per refresh
	fb     gfx.Surface

	reqBytes   uint32
	totalReqs  int
	issued     int
	completed  int
	inflight   []*mem.Request
	frameStart uint64

	// Out is drained by the SoC into the system NoC.
	Out *mem.Queue

	served, shown, dropped *stats.Counter

	trace *emtrace.Tracer
}

// AttachTracer arms refresh-span tracing on the display.
func (d *Display) AttachTracer(t *emtrace.Tracer) { d.trace = t }

// NewDisplay creates a display controller. reg may be nil.
func NewDisplay(period uint64, reg *stats.Registry) *Display {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	s := reg.Scope("display")
	return &Display{
		Period:   period,
		reqBytes: 64,
		Out:      mem.NewQueue(0),
		served:   s.Counter("requests_served"),
		shown:    s.Counter("frames_shown"),
		dropped:  s.Counter("frames_dropped"),
	}
}

// SetFrontBuffer points scan-out at a surface (flip).
func (d *Display) SetFrontBuffer(fb gfx.Surface) {
	d.fb = fb
}

// Served returns the number of scan-out requests completed by DRAM.
func (d *Display) Served() int64 { return d.served.Value() }

// FramesShown returns complete refreshes.
func (d *Display) FramesShown() int64 { return d.shown.Value() }

// FramesDropped returns refreshes aborted for missing their deadline.
func (d *Display) FramesDropped() int64 { return d.dropped.Value() }

// Tick advances the display one cycle.
func (d *Display) Tick(cycle uint64) {
	if d.fb.Width == 0 {
		return
	}
	if d.totalReqs == 0 {
		// First kickoff: scanning starts at the first refresh boundary,
		// not at whatever cycle the first Tick happens to land on. Tick
		// and NextWake agree the panel is parked until then, so a
		// configured-but-idle display cannot busy-pin the loop (and the
		// kickoff cycle does not depend on how often the owner ticked).
		if cycle < d.frameStart+d.Period {
			return
		}
		d.beginScan(cycle)
	}

	// Retire completed reads.
	kept := d.inflight[:0]
	for _, r := range d.inflight {
		if r.Done {
			d.completed++
			d.served.Inc()
		} else {
			kept = append(kept, r)
		}
	}
	d.inflight = kept

	// Deadline check.
	if cycle-d.frameStart >= d.Period {
		if d.completed >= d.totalReqs {
			d.shown.Inc()
			d.trace.Span1(emtrace.SrcSoC, "display", "refresh", d.frameStart, cycle,
				emtrace.Arg{Key: "reqs", Val: int64(d.completed)})
		} else {
			d.dropped.Inc()
			d.trace.Span1(emtrace.SrcSoC, "display", "refresh_drop", d.frameStart, cycle,
				emtrace.Arg{Key: "missing", Val: int64(d.totalReqs - d.completed)})
		}
		d.beginScan(cycle)
		return
	}

	// Pace issues across the period, aiming to finish at ~90% of it so
	// in-flight tail requests can retire before the deadline.
	elapsed := cycle - d.frameStart
	budget := d.Period * 9 / 10
	if budget == 0 {
		budget = 1
	}
	target := int(uint64(d.totalReqs) * elapsed / budget)
	if target > d.totalReqs {
		target = d.totalReqs
	}
	for d.issued < target && len(d.inflight) < 8 {
		addr := d.fb.Base + uint64(d.issued)*uint64(d.reqBytes)
		r := &mem.Request{
			Addr: addr, Size: d.reqBytes, Kind: mem.Read,
			Client: mem.ClientDisplay, IssuedAt: cycle,
		}
		if !d.Out.Push(r) {
			break
		}
		d.inflight = append(d.inflight, r)
		d.issued++
	}
}

// NextWake returns the earliest future cycle at which the display's
// state can change on its own: now when a scan must start, a completed
// read must retire or queued output must drain; otherwise the earlier
// of the refresh deadline and the pace-driven next issue slot. The
// pacing wake mirrors Tick's target arithmetic exactly (target >=
// issued+1 ⇔ elapsed >= ceil((issued+1)*budget/totalReqs)) and is only
// a wake source while the in-flight window has room — a full window
// advances via request completions, which DRAM's NextWake bounds.
func (d *Display) NextWake(cycle uint64) uint64 {
	if d.fb.Width == 0 {
		return mem.NeverWake
	}
	if d.totalReqs == 0 {
		// Awaiting first kickoff: parked until the first refresh
		// boundary (mirrors Tick exactly). Returning "now" here would
		// busy-pin the whole loop on an idle panel.
		if w := d.frameStart + d.Period; w > cycle {
			return w
		}
		return cycle
	}
	if d.Out.Len() > 0 {
		return cycle
	}
	for _, r := range d.inflight {
		if r.Done {
			return cycle
		}
	}
	deadline := d.frameStart + d.Period
	if deadline <= cycle {
		return cycle
	}
	wake := deadline
	if d.issued < d.totalReqs && len(d.inflight) < 8 {
		budget := d.Period * 9 / 10
		if budget == 0 {
			budget = 1
		}
		e := (uint64(d.issued+1)*budget + uint64(d.totalReqs) - 1) / uint64(d.totalReqs)
		if t := d.frameStart + e; t < wake {
			wake = t
		}
	}
	if wake <= cycle {
		return cycle
	}
	return wake
}

func (d *Display) beginScan(cycle uint64) {
	d.totalReqs = (d.fb.SizeBytes() + int(d.reqBytes) - 1) / int(d.reqBytes)
	d.issued = 0
	d.completed = 0
	d.inflight = d.inflight[:0]
	d.frameStart = cycle
}

// Progress returns the fraction of the current scan completed (DASH
// feedback).
func (d *Display) Progress() float64 {
	if d.totalReqs == 0 {
		return 1
	}
	return float64(d.completed) / float64(d.totalReqs)
}

// FrameStart returns the cycle the current scan began.
func (d *Display) FrameStart() uint64 { return d.frameStart }
