package soc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"emerald/internal/dram"
	"emerald/internal/guard"
	"emerald/internal/mem"
)

// deadSched never issues a DRAM request — the injected deadlock the
// watchdog must catch at the SoC level.
type deadSched struct{}

func (deadSched) Pick(*dram.Channel, uint64) int { return -1 }
func (deadSched) Tick(uint64)                    {}
func (deadSched) NextWake(uint64) uint64         { return mem.NeverWake }
func (deadSched) Name() string                   { return "dead" }

// A SoC whose DRAM never services anything wedges during CPU boot; the
// watchdog must abort with a bundle instead of burning the full budget.
func TestWatchdogAbortsDeadlockedSoC(t *testing.T) {
	cfg := smallConfig(t)
	cfg.DRAM.Scheduler = deadSched{}
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	const window = 4096
	s.SetWatchdog(window)
	err = s.RunCtx(context.Background(), 100_000_000)
	if !errors.Is(err, guard.ErrNoProgress) {
		t.Fatalf("RunCtx = %v, want ErrNoProgress", err)
	}
	// The machine wedges within the first few thousand cycles (the very
	// first instruction fetches miss to DRAM), so detection lands well
	// under stall-start + 2*N — far below the run budget.
	if c := s.Cycle(); c > 50_000 {
		t.Fatalf("watchdog aborted at cycle %d, want prompt detection", c)
	}
	var np *guard.NoProgressError
	if !errors.As(err, &np) {
		t.Fatalf("error %T does not carry a diagnostic bundle", err)
	}
	if len(np.Diag.Sections) == 0 {
		t.Fatal("diagnostic bundle is empty")
	}
	msg := err.Error()
	for _, want := range []string{"no forward progress", "soc", "cpu", "dram"} {
		if !strings.Contains(msg, want) {
			t.Errorf("diagnostic bundle lacks %q:\n%s", want, msg)
		}
	}
}

// A guarded healthy run must complete with probes executed and zero
// violations — the invariants hold on the real machine.
func TestGuardCleanOnHealthySoC(t *testing.T) {
	cfg := smallConfig(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := guard.NewChecker()
	s.AttachGuard(g)
	s.SetWatchdog(1_000_000)
	if err := s.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	if g.Checks() == 0 {
		t.Fatal("guard never ran a probe")
	}
	if v := g.Violations(); len(v) != 0 {
		t.Fatalf("healthy run recorded violations: %v", v)
	}
}
