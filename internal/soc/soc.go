package soc

import (
	"context"
	"fmt"

	"emerald/internal/cpu"
	"emerald/internal/dram"
	"emerald/internal/emtrace"
	"emerald/internal/geom"
	"emerald/internal/gfx"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/guard"
	"emerald/internal/interconnect"
	"emerald/internal/mathx"
	"emerald/internal/mem"
	"emerald/internal/par"
	"emerald/internal/sched"
	"emerald/internal/shader"
	"emerald/internal/stats"
	"emerald/internal/telemetry"
	"emerald/internal/trace"
)

// Config describes the full SoC (paper Table 5 + workload knobs).
type Config struct {
	NumCPUs      int
	CPUClockMult int // CPU cycles per system cycle (2 GHz vs 1 GHz)

	GPU  gpu.Config
	DRAM dram.Config
	// DASH, when the DRAM config uses the DASH scheduler, receives frame
	// registration and progress feedback.
	DASH *sched.DASH

	// Scaled frame periods in system cycles (see package comment).
	DisplayPeriod uint64
	AppPeriod     uint64 // app/GPU frame period (2x display = 30 FPS)

	Width, Height int

	Scene *geom.Scene

	// CPUConfig builds each core's configuration (defaults to
	// ScaledCPUConfig, whose cache sizes are shrunk in proportion to the
	// scaled working sets so the DRAM-contention regime matches the
	// paper's).
	CPUConfig func(id int) cpu.Config

	// App workload knobs.
	WorkingSetBytes uint32
	ScenePasses     uint32
	CmdBufBytes     uint32
	// Background memory intensity per non-app core: ALU iterations per
	// memory access (0 = idle core). Length NumCPUs-1.
	Background []uint32
	// BackgroundWSBytes is each background task's working set; sized
	// above the scaled L2 so background cores keep pressure on DRAM
	// throughout the frame (the multiprogrammed Android processes of the
	// paper's workload).
	BackgroundWSBytes uint32

	// Frames to simulate (plus WarmupFrames discarded from stats).
	Frames       int
	WarmupFrames int
}

// DefaultConfig builds the Case Study I system (Table 5) around a scene,
// with scaled frame periods.
func DefaultConfig(scene *geom.Scene) Config {
	return Config{
		NumCPUs:      4,
		CPUClockMult: 2,
		GPU:          gpu.CaseStudyIConfig(),
		DRAM: sched.BaselineDRAM("dram", dram.LPDDR3Geometry(2),
			dram.LPDDR3Timing(1333)),
		DisplayPeriod:     150_000,
		AppPeriod:         300_000,
		Width:             192,
		Height:            144,
		Scene:             scene,
		CPUConfig:         ScaledCPUConfig,
		WorkingSetBytes:   96 * 1024,
		ScenePasses:       1,
		CmdBufBytes:       2048,
		Background:        []uint32{4, 48, 0},
		BackgroundWSBytes: 512 * 1024,
		Frames:            4,
		WarmupFrames:      1,
	}
}

// ScaledCPUConfig shrinks the Table 5 cache hierarchy in proportion to
// the SoC's scaled frame periods and working sets (8 KB L1s, 64 KB L2),
// preserving the paper's cache-to-working-set ratios.
func ScaledCPUConfig(id int) cpu.Config {
	c := cpu.DefaultConfig(id)
	c.L1I.SizeBytes = 8 * 1024
	c.L1D.SizeBytes = 8 * 1024
	c.L2.SizeBytes = 64 * 1024
	return c
}

// FrameStats records one app frame's timing.
type FrameStats struct {
	SubmitCycle uint64
	GPUCycles   uint64 // submission to fence
	TotalCycles uint64 // submit-to-next-submit
}

// SoC is the assembled full system.
type SoC struct {
	Cfg Config
	Reg *stats.Registry
	Mem *mem.Memory

	CPUs    []*cpu.Core
	GPU     *gpu.GPU
	GL      *gl.Context
	Display *Display
	DRAM    *dram.Controller

	noc *interconnect.Crossbar

	// Frame lifecycle.
	colorA, colorB gfx.Surface
	depth          gfx.Surface
	backIsA        bool
	frameIndex     int
	fenceID        uint32
	fenceBusy      bool
	submitCycle    uint64
	framesDone     int
	Frames         []FrameStats

	mesh gl.MeshHandle

	cycle            uint64
	nextDashFeedback uint64
	// dashFeedbackEvery is the DASH progress-feedback cadence, derived
	// from the scheduler's configured scheduling unit (Table 3) so
	// parameter sweeps actually change it.
	dashFeedbackEvery uint64

	// phase1, when armed via SetParallel, runs the CPU core shards and
	// the display shard concurrently; nil ticks them inline in shard
	// order. Only CPU 0 (the app core) issues state-mutating syscalls —
	// frame submission touches the GL context, GPU queue and fence, all
	// unread by other shards until later serialized phases.
	phase1 *par.Group

	// wheel holds one slot per phase-1 shard (CPU cores, then the
	// display): the earliest system cycle at which that shard can change
	// state on its own. Shards re-arm their slot post-tick; DRAM retires
	// and frame flips Wake slots when they hand a parked shard new input.
	// Maintenance always runs — wheelOn gates only the skip — so results
	// are bit-identical in both modes.
	wheel   *par.Wheel
	wheelOn bool

	// trace, when armed via AttachTracer, receives frame submit/complete
	// spans and blocking-syscall spans; per-CPU state below tracks a
	// pending (blocked, retried-each-tick) syscall's start cycle.
	trace     *emtrace.Tracer
	sysStart  []uint64
	sysCode   []int32
	cpuTracks []string

	// guard, when armed via AttachGuard, runs invariant probes at the
	// end of every Tick (nil costs one branch). watchdog is the
	// forward-progress window in cycles (0 = off).
	guard    *guard.Checker
	watchdog uint64

	// skip enables event-driven idle cycle-skipping in RunCtx (on by
	// default; the -no-skip flag clears it). skippedCycles counts
	// cycles fast-forwarded over — a plain field, not a registry
	// counter, so skip and no-skip runs hash to identical registry
	// JSON.
	skip          bool
	skippedCycles uint64

	// probe, when armed via SetProbe, receives a progress snapshot at
	// every 1024-cycle stride poll in RunCtx. It only reads counters the
	// loop already maintains — telemetry never mutates model state, so
	// the determinism digest is identical with or without it.
	probe *telemetry.Probe
}

// noSysStart marks "no blocked syscall pending" in SoC.sysStart.
const noSysStart = ^uint64(0)

// New assembles the SoC.
func New(cfg Config, reg *stats.Registry) (*SoC, error) {
	if reg == nil {
		reg = stats.NewRegistry()
	}
	if cfg.Scene == nil {
		return nil, fmt.Errorf("soc: config needs a scene")
	}
	if cfg.NumCPUs < 1 {
		return nil, fmt.Errorf("soc: need at least one CPU")
	}
	memory := mem.NewMemory()
	s := &SoC{Cfg: cfg, Reg: reg, Mem: memory, backIsA: true, skip: true}

	s.GPU = gpu.New(cfg.GPU, memory, reg)
	s.DRAM = dram.NewController(cfg.DRAM, reg)
	s.Display = NewDisplay(cfg.DisplayPeriod, reg)
	s.wheel = par.NewWheel(cfg.NumCPUs + 1)
	s.wheelOn = true
	// A retiring DRAM read is the one input that reaches a parked
	// phase-1 shard from outside: route it to the owner's wheel slot.
	// The callback runs on parallel channel shards; Wake is an atomic
	// min. GPU fills need no slot — the GPU's serial L2 phase is never
	// wheel-gated and routes completions to its own cluster wheel.
	s.DRAM.SetOnRetire(func(r *mem.Request, cycle uint64) {
		switch r.Client {
		case mem.ClientCPU:
			if r.ClientID >= 0 && r.ClientID < cfg.NumCPUs {
				s.wheel.Wake(r.ClientID, cycle+1)
			}
		case mem.ClientDisplay:
			s.wheel.Wake(cfg.NumCPUs, cycle+1)
		}
	})

	// Ports: CPUs, GPU, display.
	s.noc = interconnect.New(interconnect.Config{
		Name: "sys_noc", Ports: cfg.NumCPUs + 2, Latency: 10, Width: 4, Depth: 64,
	}, s.DRAM.Push, reg)

	// Surfaces (double-buffered color + depth) at fixed addresses.
	fbBytes := uint64(cfg.Width * cfg.Height * 4)
	s.colorA = gfx.Surface{Base: 0x8000_0000, Width: cfg.Width, Height: cfg.Height}
	s.colorB = gfx.Surface{Base: 0x8000_0000 + fbBytes, Width: cfg.Width, Height: cfg.Height}
	s.depth = gfx.Surface{Base: 0x8000_0000 + 2*fbBytes, Width: cfg.Width, Height: cfg.Height}
	s.Display.SetFrontBuffer(s.colorB)

	// GL context over its own heap, submitting into the GPU.
	s.GL = gl.NewContext(memory, 0x1000_0000, 256<<20)
	s.GL.Submit = func(call *gpu.DrawCall) error { return s.GPU.SubmitDraw(call, nil) }
	s.GL.OnClearDepth = s.GPU.ClearHiZ

	// Upload scene assets once (app start).
	var err error
	s.mesh, err = s.GL.UploadMesh(cfg.Scene.Mesh)
	if err != nil {
		return nil, err
	}
	tex, err := s.GL.UploadTexture(cfg.Scene.Texture)
	if err != nil {
		return nil, err
	}
	if err := s.GL.BindTexture(0, tex); err != nil {
		return nil, err
	}
	fs := shader.FSTexturedEarlyZ
	if cfg.Scene.Translucent {
		fs = shader.FSTexturedBlend
		s.GL.Enable(gl.Blend)
		s.GL.DepthMask(false)
		s.GL.SetAlpha(0.6)
	}
	if err := s.GL.UseProgram(shader.VSTransform, fs); err != nil {
		return nil, err
	}
	s.GL.SetLight(mathx.V3(0.4, 0.5, 0.8).Normalize())

	// CPU cores.
	for i := 0; i < cfg.NumCPUs; i++ {
		var prog *cpu.Program
		if i == 0 {
			prog = cpu.AppFrameLoop
		} else {
			bi := i - 1
			if bi < len(cfg.Background) && cfg.Background[bi] > 0 {
				prog = cpu.BackgroundTask
			} else {
				prog = cpu.IdleTask
			}
		}
		mkCfg := cfg.CPUConfig
		if mkCfg == nil {
			mkCfg = ScaledCPUConfig
		}
		core := cpu.NewCore(mkCfg(i), prog, memory, reg)
		core.Sys = s.syscall
		// Workload parameters.
		core.Regs[10] = 0x6000_0000 + uint32(i)<<24 // working set base
		if i == 0 {
			core.Regs[11] = cfg.WorkingSetBytes
			core.Regs[12] = 0x7000_0000
			core.Regs[13] = cfg.CmdBufBytes
			core.Regs[14] = cfg.ScenePasses
		} else if bi := i - 1; bi < len(cfg.Background) && cfg.Background[bi] > 0 {
			ws := cfg.BackgroundWSBytes
			if ws == 0 {
				ws = 512 * 1024
			}
			core.Regs[11] = ws
			core.Regs[12] = cfg.Background[bi]
			core.Regs[13] = 128 // stride: two lines, low row locality
		}
		s.CPUs = append(s.CPUs, core)
	}

	// Register IPs with DASH (Table 3: display 16 ms, GPU 33 ms).
	if cfg.DASH != nil {
		cfg.DASH.RegisterIP(mem.ClientDisplay, 0, cfg.DisplayPeriod)
		cfg.DASH.RegisterIP(mem.ClientGPU, 0, cfg.AppPeriod)
		cfg.DASH.StartFrame(mem.ClientDisplay, 0, 0)
		cfg.DASH.StartFrame(mem.ClientGPU, 0, 0)
		s.dashFeedbackEvery = cfg.DASH.SchedulingUnit()
		if s.dashFeedbackEvery == 0 {
			s.dashFeedbackEvery = 1000
		}
	}
	return s, nil
}

// SetParallel arms the deterministic parallel tick engine across the
// whole system: CPU cores and the display become phase-1 shards, GPU
// clusters and DRAM channels become shards of their subsystems' tick
// phases. A nil pool (or pool of size 1) restores the inline paths,
// which execute the exact statement order of the sequential engine;
// see DESIGN.md for the shard-ownership argument that makes the
// parallel schedule bit-identical.
func (s *SoC) SetParallel(p *par.Pool) {
	s.GPU.SetParallel(p)
	s.DRAM.SetParallel(p)
	if p == nil || p.Size() <= 1 {
		s.phase1 = nil
		return
	}
	tasks := make([]func(), 0, len(s.CPUs)+1)
	for i := range s.CPUs {
		i := i
		tasks = append(tasks, func() { s.tickCPUShard(i) })
	}
	tasks = append(tasks, s.tickDisplayShard)
	s.phase1 = par.NewGroup(p, tasks)
}

// AttachTracer arms event tracing across the whole system: GPU (and its
// cores/caches), DRAM, display, CPU cache hierarchies, and the SoC's own
// frame/syscall spans. Frame completions drive the tracer's FrameMark
// region-of-interest.
func (s *SoC) AttachTracer(t *emtrace.Tracer) {
	s.trace = t
	s.GPU.AttachTracer(t)
	s.DRAM.AttachTracer(t)
	s.Display.AttachTracer(t)
	s.sysStart = make([]uint64, len(s.CPUs))
	s.sysCode = make([]int32, len(s.CPUs))
	s.cpuTracks = make([]string, len(s.CPUs))
	for i, c := range s.CPUs {
		c.AttachTracer(t)
		s.sysStart[i] = noSysStart
		s.cpuTracks[i] = fmt.Sprintf("cpu%d", i)
	}
}

// AttachGuard arms invariant checking across the whole system: the
// GPU (L2, cluster NoC, SIMT cores and their L1s), the system NoC,
// DRAM, and every CPU core's cache hierarchy. Probes run at the end of
// every Tick — the coordinator quiesce point, after all tick-engine
// shards have synchronized — so checking stays race-clean under
// -workers.
func (s *SoC) AttachGuard(g *guard.Checker) {
	s.guard = g
	s.GPU.AttachGuard(g)
	s.noc.AttachGuard(g)
	s.DRAM.AttachGuard(g)
	for _, c := range s.CPUs {
		c.AttachGuard(g)
	}
	g.Register("wheel", "soc.shards", s.checkWheel)
}

// checkWheel audits the phase-1 event wheel at the quiesce point: any
// CPU or display slot claiming its shard stays a no-op past the next
// cycle must be backed by a wake computation that agrees. A violation
// means an input path failed to wake the slot and the wheel is
// fast-forwarding over actionable work.
func (s *SoC) checkWheel(cycle uint64) error {
	for i, core := range s.CPUs {
		if due := s.wheel.At(i); due > cycle+1 {
			if w := s.cpuWake(core, cycle+1); w <= cycle+1 {
				return fmt.Errorf("cpu%d parked until %d but actionable at %d", i, due, cycle+1)
			}
		}
	}
	if due := s.wheel.At(s.Cfg.NumCPUs); due > cycle+1 {
		if w := s.Display.NextWake(cycle + 1); w <= cycle+1 {
			return fmt.Errorf("display parked until %d but actionable at %d", due, cycle+1)
		}
	}
	return nil
}

// SetWatchdog arms the forward-progress watchdog: RunCtx aborts with a
// guard.NoProgressError when no CPU or GPU instruction retires, no
// DRAM byte moves, no frame completes and no display line is served
// for window cycles (clamped to guard.MinWatchdogWindow; 0 disables).
func (s *SoC) SetWatchdog(window uint64) { s.watchdog = guard.ClampWindow(window) }

// backBuffer returns the current render target.
func (s *SoC) backBuffer() gfx.Surface {
	if s.backIsA {
		return s.colorA
	}
	return s.colorB
}

// syscall implements the driver layer (goldfish-pipe substitute),
// wrapping the handler with blocking-syscall span tracing.
func (s *SoC) syscall(c *cpu.Core, code int32) (uint32, bool) {
	v, done := s.syscallImpl(c, code)
	if s.trace != nil {
		s.traceSyscall(c, code, done)
	}
	return v, done
}

// traceSyscall emits a span for each syscall that blocked at least one
// cycle (fast-path syscalls like yield produce no events).
func (s *SoC) traceSyscall(c *cpu.Core, code int32, done bool) {
	id := c.Cfg.ID
	if id < 0 || id >= len(s.sysStart) {
		return
	}
	if !done {
		if s.sysStart[id] == noSysStart {
			s.sysStart[id] = s.cycle
			s.sysCode[id] = code
		}
		return
	}
	if s.sysStart[id] != noSysStart && s.sysCode[id] == code {
		s.trace.Span(emtrace.SrcSoC, s.cpuTracks[id], syscallName(code),
			s.sysStart[id], s.cycle)
	}
	s.sysStart[id] = noSysStart
}

func syscallName(code int32) string {
	switch code {
	case cpu.SysFrameSubmit:
		return "sys_frame_submit"
	case cpu.SysFenceDone:
		return "sys_fence_done"
	case cpu.SysWaitVsync:
		return "sys_wait_vsync"
	case cpu.SysYield:
		return "sys_yield"
	}
	return "sys_unknown"
}

func (s *SoC) syscallImpl(c *cpu.Core, code int32) (uint32, bool) {
	switch code {
	case cpu.SysFrameSubmit:
		if s.fenceBusy {
			return 0, false // previous frame still rendering
		}
		s.submitFrame()
		return s.fenceID, true

	case cpu.SysFenceDone:
		if uint32(c.Regs[2]) != s.fenceID {
			return 1, true // stale fence: long signaled
		}
		if s.fenceBusy {
			return 0, true // still rendering; poll again
		}
		return 1, true

	case cpu.SysWaitVsync:
		// Block until the next app-frame boundary. The core is parked
		// until the system cycle just before the boundary (in its own
		// clock domain), where this handler retries and completes — no
		// per-cycle spinning in between.
		next := (s.cycle/s.Cfg.AppPeriod + 1) * s.Cfg.AppPeriod
		if s.cycle < next-1 {
			c.SleepUntil((next - 1) * uint64(s.Cfg.CPUClockMult))
			return 0, false
		}
		return 0, true

	case cpu.SysYield:
		// Yielding burns the rest of the scheduling quantum: park the
		// core until the next quantum boundary instead of spinning
		// through the idle loop cycle by cycle.
		next := (s.cycle/yieldQuantum + 1) * yieldQuantum
		c.SleepUntil(next * uint64(s.Cfg.CPUClockMult))
		return 0, true
	}
	return 0, true
}

// yieldQuantum is the scheduling quantum (in system cycles) a yielding
// task gives up: sys_yield parks the core until the next boundary.
const yieldQuantum = 64

// submitFrame issues the frame's GL commands and arms the fence.
func (s *SoC) submitFrame() {
	aspect := float32(s.Cfg.Width) / float32(s.Cfg.Height)
	s.GL.BindSurfaces(s.backBuffer(), s.depth)
	s.GL.Clear(0xFF101010, true)
	s.GL.SetMVP(s.Cfg.Scene.MVP(s.frameIndex, aspect))
	if err := s.GL.DrawMesh(s.mesh); err != nil {
		panic(fmt.Sprintf("soc: draw failed: %v", err))
	}
	s.frameIndex++
	s.fenceID++
	s.fenceBusy = true
	// The previous frame's full span is submit-to-submit.
	if n := len(s.Frames); n > 0 {
		s.Frames[n-1].TotalCycles = s.cycle - s.Frames[n-1].SubmitCycle
	}
	s.submitCycle = s.cycle
	s.trace.Instant1(emtrace.SrcSoC, "frames", "frame_submit", s.cycle,
		emtrace.Arg{Key: "fence", Val: int64(s.fenceID)})
	if s.Cfg.DASH != nil {
		s.Cfg.DASH.StartFrame(mem.ClientGPU, 0, s.cycle)
	}
}

// completeFrame retires the fence and flips buffers.
func (s *SoC) completeFrame() {
	s.fenceBusy = false
	// Flip: the just-rendered buffer becomes the display front buffer.
	front := s.backBuffer()
	s.backIsA = !s.backIsA
	s.Display.SetFrontBuffer(front)
	// The flip is display input from outside its shard; a parked panel
	// must notice it next cycle (first configuration after construction,
	// or a geometry change between surfaces).
	s.wheel.Wake(s.Cfg.NumCPUs, s.cycle+1)

	st := FrameStats{
		SubmitCycle: s.submitCycle,
		GPUCycles:   s.cycle - s.submitCycle,
		// Provisional: submit-to-complete. The next frame's submission
		// back-fills the real submit-to-submit span; for the run's final
		// frame (which has no successor) this stands, so every completed
		// frame reports a nonzero TotalCycles.
		TotalCycles: s.cycle - s.submitCycle,
	}
	s.Frames = append(s.Frames, st)
	s.framesDone++
	s.trace.Span1(emtrace.SrcSoC, "frames", "frame", s.submitCycle, s.cycle,
		emtrace.Arg{Key: "frame", Val: int64(s.framesDone)})
	s.trace.FrameMark()
}

// Cycle returns the current system cycle.
func (s *SoC) Cycle() uint64 { return s.cycle }

// RestoreCheckpoint seeds the system from a trace checkpoint: the
// functional memory is replaced with the snapshot (the page set is
// reconciled, so no stale pages survive), the GPU's Hi-Z summaries are
// invalidated (the restored depth buffer has no on-chip counterpart),
// and the system clock adopts the checkpoint cycle so downstream stats
// sit on the original run's timeline. Call it on a freshly built,
// idle system, before Run.
func (s *SoC) RestoreCheckpoint(cp *trace.Checkpoint) {
	cp.RestoreMemory(s.Mem)
	s.GPU.ClearHiZ()
	s.cycle = cp.Cycle
}

// SetIdleSkip enables or disables event-driven idle cycle-skipping in
// RunCtx. Results are bit-identical either way: skipping only jumps
// over cycles whose component ticks are gated no-ops, and jumps are
// clamped to the watchdog/context poll stride.
func (s *SoC) SetIdleSkip(on bool) { s.skip = on }

// SetEventWheel toggles the per-shard event wheels across the whole
// system (CPU cores, display, GPU clusters, DRAM channels). Where idle
// skipping fast-forwards only when every component is quiet, the wheels
// park individual components inside busy periods; results are
// bit-identical either way.
func (s *SoC) SetEventWheel(on bool) {
	s.wheelOn = on
	s.GPU.SetEventWheel(on)
	s.DRAM.SetEventWheel(on)
}

// SetProbe attaches a telemetry probe: RunCtx publishes a progress
// snapshot to it at every stride poll and serves its on-demand
// diagnostic requests. nil detaches. The probe reads monotone counters
// only and never writes model state, so results are bit-identical with
// or without one attached.
func (s *SoC) SetProbe(p *telemetry.Probe) { s.probe = p }

// SkippedCycles returns the number of cycles fast-forwarded over by
// idle skipping since construction.
func (s *SoC) SkippedCycles() uint64 { return s.skippedCycles }

// NextWake returns the earliest future system cycle at which any
// component's state can change on its own: mem.NeverWake when the
// whole system is quiescent, the current cycle when any component has
// actionable work (in which case the tick loop must not skip).
func (s *SoC) NextWake() uint64 {
	c := s.cycle
	if s.fenceBusy && !s.GPU.Busy() {
		return c // fence resolution pending
	}
	mult := uint64(s.Cfg.CPUClockMult)
	w := uint64(mem.NeverWake)
	for _, core := range s.CPUs {
		cw := core.NextWake(c * mult)
		if cw != mem.NeverWake {
			cw /= mult // CPU clock domain -> system cycles (floor)
		}
		if cw < w {
			w = cw
		}
		if w <= c {
			return c
		}
	}
	if v := s.Display.NextWake(c); v < w {
		w = v
	}
	if s.GPU.Out.Len() > 0 {
		return c
	}
	if v := s.GPU.NextWake(c); v < w {
		w = v
	}
	if v := s.noc.NextWake(c); v < w {
		w = v
	}
	if v := s.DRAM.NextWake(c); v < w {
		w = v
	}
	if s.Cfg.DASH != nil && s.nextDashFeedback < w {
		w = s.nextDashFeedback
	}
	if w <= c {
		return c
	}
	return w
}

// tickCPUShard advances CPU core i at its clock multiple and drains
// its outbound requests into its private NoC ingress port. The shard
// owns the core, its L1, and port i exclusively; core 0's syscalls may
// additionally mutate SoC frame state, which no other phase-1 shard
// reads.
func (s *SoC) tickCPUShard(i int) {
	c := s.cycle
	if s.wheelOn && !s.wheel.Due(i, c) {
		// Parked: the slot value asserts every CPU-domain tick until
		// then is a gated no-op (core sleeping/halted/blocked, caches
		// quiet, output drained).
		return
	}
	core := s.CPUs[i]
	for m := 0; m < s.Cfg.CPUClockMult; m++ {
		core.Tick(c*uint64(s.Cfg.CPUClockMult) + uint64(m))
	}
	port := s.noc.Port(i)
	for {
		r := core.Out.Peek()
		if r == nil {
			break
		}
		if !port.Push(r) {
			break // port full: requests wait in the core's out queue
		}
		core.Out.Pop()
	}
	s.wheel.Arm(i, s.cpuWake(core, c+1))
}

// cpuWake converts core i's next-wake from its clock domain to system
// cycles, at or after system cycle `from`, for re-arming its wheel
// slot. Floor division is exact here: CPU cycle w falls inside system
// cycle w/mult, whose shard tick covers it.
func (s *SoC) cpuWake(core *cpu.Core, from uint64) uint64 {
	mult := uint64(s.Cfg.CPUClockMult)
	w := core.NextWake(from * mult)
	if w == mem.NeverWake {
		return mem.NeverWake
	}
	if w /= mult; w < from {
		return from
	}
	return w
}

// tickDisplayShard advances the display controller and drains its
// requests into its private NoC ingress port. The display only reads
// the front buffer (published by completeFrame, a later serialized
// phase) and its own scan-out state, so it is independent of the CPU
// shards.
func (s *SoC) tickDisplayShard() {
	c := s.cycle
	slot := s.Cfg.NumCPUs
	if s.wheelOn && !s.wheel.Due(slot, c) {
		return
	}
	s.Display.Tick(c)
	dport := s.noc.Port(s.Cfg.NumCPUs + 1)
	for {
		r := s.Display.Out.Peek()
		if r == nil {
			break
		}
		if !dport.Push(r) {
			break // port full: scan-out reads wait in Display.Out
		}
		s.Display.Out.Pop()
	}
	w := s.Display.NextWake(c + 1)
	if w <= c+1 {
		w = c + 1
	}
	s.wheel.Arm(slot, w)
}

// Tick advances the SoC one system cycle. The cycle is phase-structured
// so independent shards can tick concurrently between serialized
// exchange stages (see SetParallel):
//
//	phase 1: CPU core shards + display shard   (parallel)
//	phase 2: GPU (internally: serial L2/NoC, parallel clusters, serial
//	         front end), then GPU→NoC drain, NoC, DRAM (serial
//	         scheduler tick, parallel channels)
//	phase 3: fence resolution + DASH feedback  (coordinator)
func (s *SoC) Tick() {
	c := s.cycle

	// Phase 1: CPUs (at their clock multiple) and display.
	if s.phase1 != nil {
		s.phase1.Run()
	} else {
		for i := range s.CPUs {
			s.tickCPUShard(i)
		}
		s.tickDisplayShard()
	}

	// GPU.
	s.GPU.Tick(c)
	gport := s.noc.Port(s.Cfg.NumCPUs)
	for {
		r := s.GPU.Out.Peek()
		if r == nil {
			break
		}
		if !gport.Push(r) {
			break // port full: requests wait in GPU.Out
		}
		s.GPU.Out.Pop()
	}

	s.noc.Tick(c)
	s.DRAM.Tick(c)

	// Fence resolution.
	if s.fenceBusy && !s.GPU.Busy() {
		s.completeFrame()
	}

	// DASH progress feedback (per scheduling-unit granularity).
	if s.Cfg.DASH != nil && c >= s.nextDashFeedback {
		s.nextDashFeedback = c + s.dashFeedbackEvery
		if s.fenceBusy {
			s.Cfg.DASH.ReportProgress(mem.ClientGPU, 0, s.GPU.DrawProgress())
		} else {
			s.Cfg.DASH.ReportProgress(mem.ClientGPU, 0, 1)
		}
		s.Cfg.DASH.StartFrame(mem.ClientDisplay, 0, s.Display.FrameStart())
		s.Cfg.DASH.ReportProgress(mem.ClientDisplay, 0, s.Display.Progress())
	}

	s.guard.Tick(c)
	s.cycle++
}

// Run simulates until Frames+WarmupFrames app frames have completed (or
// the budget expires), returning an error on timeout.
func (s *SoC) Run(budget uint64) error {
	return s.RunCtx(context.Background(), budget)
}

// ctxCheckMask gates how often the run loops poll the context: every
// 1024 simulated cycles, cheap against the cost of a tick but prompt
// enough (sub-millisecond wall time) for job timeouts to take effect
// mid-simulation.
const ctxCheckMask = 1<<10 - 1

// RunCtx is Run with cancellation and self-diagnosis: every 1024
// simulated cycles it polls the context, checks any attached guard for
// invariant violations, and samples the forward-progress watchdog, so
// a per-job timeout, corrupt state, or a wedged machine stops the tick
// loop instead of waiting out the cycle budget.
func (s *SoC) RunCtx(ctx context.Context, budget uint64) error {
	target := s.Cfg.Frames + s.Cfg.WarmupFrames
	start := s.cycle
	wd := guard.NewWatchdog(s.watchdog)
	for s.cycle-start < budget {
		if s.cycle&ctxCheckMask == 0 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("soc: run cancelled at cycle %d (%d/%d frames): %w",
						s.cycle, s.framesDone, target, err)
				}
			}
			if err := s.guard.Err(); err != nil {
				return fmt.Errorf("soc: aborted at cycle %d (%d/%d frames): %w",
					s.cycle, s.framesDone, target, err)
			}
			if stalled, window := wd.Check(s.cycle, s.progressSig()); stalled {
				return s.noProgress(window)
			}
			if s.probe != nil {
				s.probe.Publish(s.telemetrySample(), s.captureDiag)
			}
		}
		if s.skip {
			// When no component can make progress before cycle w, jump
			// straight there instead of ticking dead cycles. Jumps are
			// clamped to the next 1024-cycle poll boundary (so context,
			// guard and watchdog sampling happen on exactly the same
			// cycles as an unskipped run) and to the budget.
			if w := s.NextWake(); w > s.cycle && w != mem.NeverWake {
				next := (s.cycle | ctxCheckMask) + 1
				if w < next {
					next = w
				}
				if lim := start + budget; next > lim {
					next = lim
				}
				s.skippedCycles += next - s.cycle
				s.cycle = next
				continue
			}
		}
		s.Tick()
		if s.framesDone >= target {
			return nil
		}
	}
	return fmt.Errorf("soc: %d/%d frames after %d cycles", s.framesDone, target, budget)
}

// progressSig sums the system's monotone progress counters: CPU and
// GPU instructions, DRAM bytes, display service and completed frames.
// Flat across a watchdog window means nothing anywhere is advancing.
func (s *SoC) progressSig() uint64 {
	var sig int64
	for _, c := range s.CPUs {
		sig += c.Instructions()
	}
	sig += s.DRAM.TotalBytes() + s.Display.Served() + int64(s.framesDone)
	return uint64(sig) + s.GPU.Progress()
}

// diagnose builds the diagnostic bundle — per-CPU state, GPU front end
// and per-core warp detail, NoC credits, DRAM queue occupancy and the
// emtrace tail when tracing is armed — for a watchdog abort (window >
// 0) or an on-demand telemetry snapshot of a healthy run (window 0).
func (s *SoC) diagnose(window uint64) guard.Diag {
	d := guard.Diag{Cycle: s.cycle, Window: window}
	cpuLines := make([]string, 0, len(s.CPUs)+1)
	cpuLines = append(cpuLines, fmt.Sprintf("frames=%d/%d fenceBusy=%v",
		s.framesDone, s.Cfg.Frames+s.Cfg.WarmupFrames, s.fenceBusy))
	for _, c := range s.CPUs {
		cpuLines = append(cpuLines, c.Diagnose(s.cycle))
	}
	d.Add("soc", cpuLines)
	s.GPU.Diagnose(&d, s.cycle)
	d.Add("sys_noc", s.noc.Diagnose(s.cycle))
	d.Add("dram", s.DRAM.Diagnose(s.cycle))
	d.Add("emtrace tail", s.trace.TailLines(16))
	return d
}

// noProgress builds the watchdog abort carrying the bundle.
func (s *SoC) noProgress(window uint64) error {
	return &guard.NoProgressError{Diag: s.diagnose(window)}
}

// captureDiag serves the probe's on-demand diagnostic requests; it runs
// on the simulation goroutine at a stride poll, where no tick-engine
// shard is mutating state.
func (s *SoC) captureDiag() *guard.Diag {
	d := s.diagnose(0)
	return &d
}

// telemetrySample snapshots the monotone progress counters for the
// probe — the same counters progressSig folds, kept per-component so
// observers can see which engine is moving.
func (s *SoC) telemetrySample() telemetry.Sample {
	var cpu int64
	for _, c := range s.CPUs {
		cpu += c.Instructions()
	}
	return telemetry.Sample{
		Cycle:         s.cycle,
		FramesDone:    s.framesDone,
		FramesTarget:  s.Cfg.Frames + s.Cfg.WarmupFrames,
		SkippedCycles: s.skippedCycles,
		Components: telemetry.Components{
			CPUInstructions: cpu,
			GPUWork:         int64(s.GPU.Progress()),
			DRAMBytes:       s.DRAM.TotalBytes(),
			DisplayLines:    s.Display.Served(),
			FramesRetired:   int64(s.framesDone),
		},
	}
}

// Results summarizes the run for the Case Study I figures, skipping
// warmup frames.
type Results struct {
	Config          string
	Model           string
	MeanGPUCycles   float64
	MeanFrameCycles float64
	DisplayServed   int64
	FramesShown     int64
	FramesDropped   int64
	RowHitRate      float64
	BytesPerAct     float64
}

// Results computes the run summary.
func (s *SoC) Results(configName string) Results {
	r := Results{
		Config:        configName,
		Model:         s.Cfg.Scene.Name,
		DisplayServed: s.Display.Served(),
		FramesShown:   s.Display.FramesShown(),
		FramesDropped: s.Display.FramesDropped(),
		RowHitRate:    s.DRAM.RowHitRate(),
		BytesPerAct:   s.DRAM.BytesPerActivation(),
	}
	var gpuSum, frameSum, nGPU, nFrame float64
	for i, f := range s.Frames {
		if i < s.Cfg.WarmupFrames {
			continue
		}
		gpuSum += float64(f.GPUCycles)
		nGPU++
		if f.TotalCycles > 0 {
			frameSum += float64(f.TotalCycles)
			nFrame++
		}
	}
	if nGPU > 0 {
		r.MeanGPUCycles = gpuSum / nGPU
	}
	if nFrame > 0 {
		r.MeanFrameCycles = frameSum / nFrame
	}
	return r
}
