package soc

import (
	"bytes"
	"crypto/sha256"
	"fmt"

	"testing"

	"emerald/internal/dram"
	"emerald/internal/geom"
	"emerald/internal/gfx"
	"emerald/internal/mem"
	"emerald/internal/sched"
	"emerald/internal/stats"
)

// smallConfig shrinks the system for unit tests.
func smallConfig(t *testing.T) Config {
	t.Helper()
	scene, err := geom.SoCModel(geom.M2Cube)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(scene)
	cfg.Width, cfg.Height = 96, 72
	cfg.DisplayPeriod = 60_000
	cfg.AppPeriod = 120_000
	cfg.WorkingSetBytes = 16 * 1024
	cfg.ScenePasses = 1
	cfg.Frames = 2
	cfg.WarmupFrames = 1
	return cfg
}

func TestSoCBootsAndRendersFrames(t *testing.T) {
	cfg := smallConfig(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	if len(s.Frames) < cfg.Frames+cfg.WarmupFrames {
		t.Fatalf("frames = %d", len(s.Frames))
	}
	res := s.Results("BAS")
	if res.MeanGPUCycles <= 0 {
		t.Fatal("no GPU render time recorded")
	}
	// The display must have completed at least one refresh.
	if s.Display.FramesShown()+s.Display.FramesDropped() == 0 {
		t.Fatal("display never completed a refresh window")
	}
	if s.Display.Served() == 0 {
		t.Fatal("display was never serviced by DRAM")
	}
	// The rendered frame actually reached the framebuffer: some pixel
	// differs from the clear color.
	painted := false
	fb := s.colorA
	for y := 0; y < cfg.Height && !painted; y += 8 {
		for x := 0; x < cfg.Width; x += 8 {
			if fb.ReadPixel(s.Mem, x, y) != 0xFF101010 {
				painted = true
				break
			}
		}
	}
	if !painted {
		t.Fatal("nothing rendered into the framebuffer")
	}
}

func TestSoCCPUsGenerateTraffic(t *testing.T) {
	cfg := smallConfig(t)
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(30_000_000); err != nil {
		t.Fatal(err)
	}
	if s.DRAM.ServedBy(mem.ClientCPU) == 0 {
		t.Fatal("CPU traffic never reached DRAM")
	}
	if s.DRAM.ServedBy(mem.ClientGPU) == 0 {
		t.Fatal("GPU traffic never reached DRAM")
	}
	if s.DRAM.ServedBy(mem.ClientDisplay) == 0 {
		t.Fatal("display traffic never reached DRAM")
	}
	// App core executed many instructions across frames.
	if s.CPUs[0].Instructions() < 1000 {
		t.Fatalf("app core retired only %d instructions", s.CPUs[0].Instructions())
	}
}

func TestSoCWithDASHSchedulerRuns(t *testing.T) {
	cfg := smallConfig(t)
	dcfg, dash := sched.DASHDRAM("dram", dram.LPDDR3Geometry(2),
		dram.LPDDR3Timing(1333), sched.DefaultDASHConfig(cfg.NumCPUs, false))
	cfg.DRAM = dcfg
	cfg.DASH = dash
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(40_000_000); err != nil {
		t.Fatal(err)
	}
	if s.Results("DCB").MeanGPUCycles <= 0 {
		t.Fatal("DASH run produced no GPU timing")
	}
}

func TestSoCWithHMCRuns(t *testing.T) {
	cfg := smallConfig(t)
	cfg.DRAM = sched.HMCDRAM("dram", dram.LPDDR3Geometry(2), dram.LPDDR3Timing(1333))
	s, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(40_000_000); err != nil {
		t.Fatal(err)
	}
	// HMC: CPU traffic only on channel 0, IP traffic only on channel 1.
	ch0CPU := s.Reg.Value("dram.ch0.served_cpu")
	ch1CPU := s.Reg.Value("dram.ch1.served_cpu")
	ch0GPU := s.Reg.Value("dram.ch0.served_gpu")
	ch1GPU := s.Reg.Value("dram.ch1.served_gpu")
	if ch0CPU == 0 || ch1CPU != 0 {
		t.Fatalf("HMC CPU routing broken: ch0=%d ch1=%d", ch0CPU, ch1CPU)
	}
	if ch1GPU == 0 || ch0GPU != 0 {
		t.Fatalf("HMC GPU routing broken: ch0=%d ch1=%d", ch0GPU, ch1GPU)
	}
}

func TestDisplayDropsUnderStarvation(t *testing.T) {
	// A display alone against DRAM that is far too slow must drop frames.
	reg := stats.NewRegistry()
	d := NewDisplay(2_000, reg) // absurdly short period
	fb := testSurface()
	d.SetFrontBuffer(fb)
	ctrl := dram.NewController(dram.Config{
		Geometry: dram.LPDDR3Geometry(1),
		Timing:   dram.LPDDR3Timing(133),
	}, reg)
	for cycle := uint64(0); cycle < 50_000; cycle++ {
		d.Tick(cycle)
		for {
			r := d.Out.Pop()
			if r == nil {
				break
			}
			if !ctrl.Push(r) {
				break
			}
		}
		ctrl.Tick(cycle)
	}
	if d.FramesDropped() == 0 {
		t.Fatal("starved display should drop frames")
	}
}

func TestDisplayMeetsDeadlineWithFastMemory(t *testing.T) {
	reg := stats.NewRegistry()
	d := NewDisplay(100_000, reg)
	d.SetFrontBuffer(testSurface())
	for cycle := uint64(0); cycle < 400_000; cycle++ {
		d.Tick(cycle)
		for {
			r := d.Out.Pop()
			if r == nil {
				break
			}
			r.Complete(cycle + 20)
		}
	}
	if d.FramesShown() < 2 {
		t.Fatalf("frames shown = %d, want >= 2", d.FramesShown())
	}
	if d.FramesDropped() > 1 {
		t.Fatalf("unexpected drops: %d", d.FramesDropped())
	}
}

func testSurface() gfx.Surface {
	return gfx.Surface{Base: 0x8000_0000, Width: 64, Height: 64}
}

// TestIdleSkipPreservesResults runs the same SoC with and without
// event-driven idle cycle-skipping and demands a bit-identical end
// state (every counter, every framebuffer byte, the final cycle),
// while the skipping run must actually have jumped over idle cycles:
// the display-paced workload leaves long gaps between bursts.
func TestIdleSkipPreservesResults(t *testing.T) {
	run := func(skip bool) (*SoC, string) {
		cfg := smallConfig(t)
		s, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		s.SetIdleSkip(skip)
		if err := s.Run(30_000_000); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Reg.DumpJSON(&buf); err != nil {
			t.Fatal(err)
		}
		fb := make([]byte, 3*cfg.Width*cfg.Height*4)
		s.Mem.Read(0x8000_0000, fb)
		h := sha256.New()
		h.Write(buf.Bytes())
		h.Write(fb)
		fmt.Fprintf(h, "cycle=%d", s.Cycle())
		return s, fmt.Sprintf("%x", h.Sum(nil))
	}
	skipped, dSkip := run(true)
	full, dFull := run(false)
	if dSkip != dFull {
		t.Errorf("idle skipping changed the observable end state: %s != %s", dSkip, dFull)
	}
	if skipped.SkippedCycles() == 0 {
		t.Error("skipping run jumped over zero cycles on an idle-heavy workload")
	}
	if full.SkippedCycles() != 0 {
		t.Errorf("no-skip run reports %d skipped cycles", full.SkippedCycles())
	}
	t.Logf("skipped %d of %d cycles (%.1f%%)", skipped.SkippedCycles(), skipped.Cycle(),
		100*float64(skipped.SkippedCycles())/float64(skipped.Cycle()))
}
