package emerald

// End-to-end check of the emtrace observability layer: render a real
// workload frame on the standalone GPU with tracing on, export Chrome
// trace-event JSON, and verify the file is decodable, well-formed, and
// contains spans from every instrumented subsystem.

import (
	"bytes"
	"encoding/json"
	"testing"

	"emerald/internal/emtrace"
	"emerald/internal/geom"
	"emerald/internal/gl"
	"emerald/internal/gpu"
	"emerald/internal/mathx"
	"emerald/internal/shader"
)

// renderTracedFrame renders one small W3 frame with a tracer attached.
func renderTracedFrame(t *testing.T) *emtrace.Tracer {
	t.Helper()
	scene, err := geom.DFSLWorkload(geom.W3Cube)
	if err != nil {
		t.Fatal(err)
	}
	s := gpu.DefaultStandalone(nil)
	tr := emtrace.New(0)
	s.AttachTracer(tr)
	ctx := gl.NewContext(s.Mem(), 0x1000_0000, 256<<20)
	ctx.Submit = func(call *gpu.DrawCall) error { return s.GPU.SubmitDraw(call, nil) }
	ctx.OnClearDepth = s.GPU.ClearHiZ
	ctx.Viewport(96, 72)
	fs := shader.FSTexturedEarlyZ
	if scene.Translucent {
		fs = shader.FSTexturedBlend
		ctx.Enable(gl.Blend)
		ctx.DepthMask(false)
		ctx.SetAlpha(0.6)
	}
	if err := ctx.UseProgram(shader.VSTransform, fs); err != nil {
		t.Fatal(err)
	}
	ctx.SetLight(mathx.V3(0.4, 0.5, 0.8).Normalize())
	tex, err := ctx.UploadTexture(scene.Texture)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.BindTexture(0, tex); err != nil {
		t.Fatal(err)
	}
	mesh, err := ctx.UploadMesh(scene.Mesh)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Clear(0xFF101020, true)
	ctx.SetMVP(scene.MVP(0, 96.0/72.0))
	if err := ctx.DrawMesh(mesh); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilIdle(4_000_000_000); err != nil {
		t.Fatal(err)
	}
	tr.FrameMark()
	return tr
}

// TestTraceEventsEndToEnd is the PR's acceptance scenario in-process:
// the exported Chrome JSON must decode, every event must carry a valid
// phase/timestamp/pid/name, data events must be in nondecreasing cycle
// order, and the gpu, simt, cache, and dram sources must all appear.
func TestTraceEventsEndToEnd(t *testing.T) {
	tr := renderTracedFrame(t)
	if tr.Len() == 0 {
		t.Fatal("tracer recorded no events")
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no traceEvents in output")
	}

	// Recover pid -> source from process_name metadata, then check every
	// data event and the cycle ordering.
	procName := map[int]string{}
	for _, e := range file.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procName[e.Pid] = e.Args["name"].(string)
		}
	}
	sources := map[string]int{}
	lastTs := -1.0
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			continue
		case "X", "i":
		default:
			t.Fatalf("unexpected phase %q in event %+v", e.Ph, e)
		}
		if e.Name == "" {
			t.Fatalf("event with empty name: %+v", e)
		}
		if e.Ts == nil || *e.Ts < 0 {
			t.Fatalf("event %q missing/negative ts", e.Name)
		}
		if e.Ph == "X" && e.Dur < 0 {
			t.Fatalf("span %q has negative dur %v", e.Name, e.Dur)
		}
		if e.Ph == "i" && e.S != "t" {
			t.Fatalf("instant %q has scope %q, want \"t\"", e.Name, e.S)
		}
		src, ok := procName[e.Pid]
		if !ok {
			t.Fatalf("event %q references pid %d with no process_name metadata", e.Name, e.Pid)
		}
		sources[src]++
		if *e.Ts < lastTs {
			t.Fatalf("event %q at ts %v after ts %v: not in cycle order", e.Name, *e.Ts, lastTs)
		}
		lastTs = *e.Ts
	}
	for _, want := range []string{"gpu", "simt", "cache", "dram"} {
		if sources[want] == 0 {
			t.Fatalf("no events from source %q (got %v)", want, sources)
		}
	}
}

// TestTraceRoundTripThroughReader feeds the exported JSON back through
// ReadChromeJSON (the tracetool timeline path) and checks the recovered
// events keep their sources and ordering.
func TestTraceRoundTripThroughReader(t *testing.T) {
	tr := renderTracedFrame(t)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := emtrace.ReadChromeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != tr.Len() {
		t.Fatalf("round trip lost events: %d != %d", len(events), tr.Len())
	}
	for i := 1; i < len(events); i++ {
		if events[i].Cycle < events[i-1].Cycle {
			t.Fatalf("event %d out of cycle order", i)
		}
	}
	srcs := map[string]bool{}
	for _, e := range events {
		srcs[e.Source] = true
	}
	for _, want := range []string{"gpu", "simt", "cache", "dram"} {
		if !srcs[want] {
			t.Fatalf("round trip lost source %q (got %v)", want, srcs)
		}
	}
}

// TestDisabledTracerIsInert checks the default path: with no tracer
// attached the same render produces an identical cycle count, pinning
// the zero-overhead claim behaviorally (the benchmark guards timing).
func TestDisabledTracerIsInert(t *testing.T) {
	cycles := func(attach bool) uint64 {
		scene, err := geom.DFSLWorkload(geom.W3Cube)
		if err != nil {
			t.Fatal(err)
		}
		s := gpu.DefaultStandalone(nil)
		if attach {
			tr := emtrace.New(0)
			tr.SetEnabled(false)
			s.AttachTracer(tr)
		}
		ctx := gl.NewContext(s.Mem(), 0x1000_0000, 256<<20)
		ctx.Submit = func(call *gpu.DrawCall) error { return s.GPU.SubmitDraw(call, nil) }
		ctx.OnClearDepth = s.GPU.ClearHiZ
		ctx.Viewport(96, 72)
		if err := ctx.UseProgram(shader.VSTransform, shader.FSTexturedEarlyZ); err != nil {
			t.Fatal(err)
		}
		ctx.SetLight(mathx.V3(0.4, 0.5, 0.8).Normalize())
		tex, err := ctx.UploadTexture(scene.Texture)
		if err != nil {
			t.Fatal(err)
		}
		if err := ctx.BindTexture(0, tex); err != nil {
			t.Fatal(err)
		}
		mesh, err := ctx.UploadMesh(scene.Mesh)
		if err != nil {
			t.Fatal(err)
		}
		ctx.Clear(0xFF101020, true)
		ctx.SetMVP(scene.MVP(0, 96.0/72.0))
		if err := ctx.DrawMesh(mesh); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunUntilIdle(4_000_000_000); err != nil {
			t.Fatal(err)
		}
		return s.Cycle()
	}
	without, with := cycles(false), cycles(true)
	if without != with {
		t.Fatalf("disabled tracer changed simulation: %d cycles vs %d", with, without)
	}
}
